(** The flat checking IR.

    [lower_fundef] compiles a function body once into a compact array of
    basic blocks of checking-relevant instructions; the checker's
    abstract interpreter then runs as a tight loop over instruction
    arrays instead of re-dispatching on the AST per procedure
    (docs/performance.md).  Lowering is purely syntactic — instructions
    keep references into the AST for expressions and declarations, so
    the interpreter produces byte-identical diagnostics to the tree
    walk (the [+treewalk] escape hatch selects the legacy walk; the
    difftest oracle and the parcheck identity tests gate equality).

    Structured control flow is preserved: loops and branches reference
    sub-blocks rather than raw jump targets, because the checker's
    [+loopexec] widening and breakable-scope machinery is defined over
    loop bodies, not arbitrary edges.  [Scase]/[Sdefault]/[Slabel]
    wrappers are stripped during lowering (the checker treats them as
    transparent), [Sskip] disappears, and a [switch] body is
    pre-segmented into its case arms — work the tree walk re-does every
    time a procedure is checked. *)

type block = int
(** Index into {!proc.p_blocks}. *)

type instr =
  | Iexpr of Cfront.Ast.expr * Cfront.Loc.t
      (** expression statement (leak-checks an unconsumed fresh result) *)
  | Iassert of Cfront.Ast.expr  (** keep only the path where it holds *)
  | Idecl of Cfront.Ast.decl list * Cfront.Loc.t  (** local declarations *)
  | Iscope of block * Cfront.Loc.t
      (** run [block] in a fresh scope; scope-exit leak checks apply *)
  | Iif of Cfront.Ast.expr * block * block option * Cfront.Loc.t
  | Iwhile of Cfront.Ast.expr * block * Cfront.Loc.t
  | Ido of block * Cfront.Ast.expr * Cfront.Loc.t
  | Ifor of
      Cfront.Ast.expr option * Cfront.Ast.expr option * block * Cfront.Loc.t
      (** condition, step, body; the initializer is lowered inline
          before this instruction (it runs exactly once) *)
  | Iret of Cfront.Ast.expr option * Cfront.Loc.t
  | Ibreak
  | Icontinue
  | Iswitch of Cfront.Ast.expr * block array * bool * Cfront.Loc.t
      (** scrutinee, pre-segmented case arms, has-default *)
  | Igoto of Cfront.Loc.t  (** reported as unanalyzed; path abandoned *)

type proc = {
  p_name : string;
  p_entry : block;  (** the lowered function body *)
  p_blocks : instr array array;
  p_mutates_env : bool;  (** see {!mutates_env} *)
}

val lower_fundef : Cfront.Ast.fundef -> proc
(** Compile one function body.  Ticks the [ir_blocks]/[ir_instrs]
    telemetry counters once per block/instruction built. *)

val mutates_env : Cfront.Ast.fundef -> bool
(** Can checking this body mutate the shared program environment?
    True when the body contains a block-scope [typedef] or [extern]
    declaration (they reach [Sema.process_decl]) or any type whose
    resolution registers definitions — an inline [struct]/[union] field
    list, an [enum] item list, or an anonymous tag (they reach the
    mutating paths of [Sema.resolve_ty]).  The parallel driver checks
    such procedures against a private {!Sema.copy_for_check} and shares
    the program read-only across domains for everything else. *)

val instr_count : proc -> int
(** Total instructions across all blocks. *)

val block_instrs : proc -> block -> instr array
(** The instruction array of one block (effect-extraction walks — the
    interprocedural summary pass — iterate the IR through this). *)

val pp_proc : Format.formatter -> proc -> unit
(** Stable, compact rendering of a lowered procedure (golden tests). *)

val to_string : proc -> string
(** [pp_proc] to a string. *)
