(** Synthetic C program generation (deterministic in [seed]).

    Stands in for Section 7's 100k-line self-check subject: sized clean
    programs with the same structural mix (abstract types with
    create/destroy/accessor/worker functions, annotated interfaces, a
    driver), plus controlled bug seeding for the static-vs-run-time
    detection experiments. *)

(** The seeded bug classes (Section 7's residual-bug discussion plus the
    classes both tools aim at). *)
type bug_kind =
  | Bleak
  | Buse_after_free
  | Bdouble_free
  | Bnull_deref  (** hides on the malloc-failure path *)
  | Buse_undef
  | Bfree_offset  (** static misses by default (footnote 8) *)
  | Bfree_static  (** static misses by default (footnote 8) *)
  | Bglobal_leak  (** invisible to the intraprocedural checker *)
  | Bloop_leak  (** alloc per iteration, freed once after the loop *)
  | Bloop_use_after_free  (** released in the body, used across the back edge *)
  | Bloop_null_deref  (** re-nulled mid-loop, dereferenced next iteration *)
  | Brealloc_lost
      (** [p = realloc(p, n)] — lost exactly when the allocation fails;
          caught statically under [+allocmodel] *)
  | Boom_leak  (** held storage leaked on an allocation-failure bail path *)
  | Brefcount_leak  (** [newref] return with no reference behind it *)
  | Brefcount_use
      (** a stashed uncounted borrow outlives the counted reference *)
  | Bxproc_callee_free
      (** an unannotated helper frees its parameter, the caller reads it
          afterwards; caught statically only under [+xproc] *)
  | Bxproc_callee_free_df
      (** an unannotated helper frees its parameter, the caller frees it
          again; caught under [+xproc] *)
  | Bxproc_cond_release
      (** an unannotated helper frees its parameter on one branch, the
          caller frees unconditionally; caught under [+xproc] *)
  | Bxproc_escape_store
      (** an unannotated helper stashes its parameter in a global, the
          caller frees then reads it back; caught under [+xproc] *)

val all_bug_kinds : bug_kind list
val bug_kind_string : bug_kind -> string

val loop_carried : bug_kind -> bool
(** Needs a loop back edge to manifest — invisible to the paper's
    zero-or-one-times heuristic, statically detectable only under
    [+loopexec]. *)

val oom_carried : bug_kind -> bool
(** Manifests dynamically only when an allocation is forced to fail
    (the OOM fault-injection sweep); every ordinary run hides it on the
    untaken failure path. *)

type seeded = {
  sb_kind : bug_kind;
  sb_module : int;
  sb_fn : string;
  sb_executed : bool;  (** does the generated driver call the carrier? *)
}

val sb_file : seeded -> string
(** The file carrying a seeded bug (["m<N>.c"]). *)

type program = {
  files : (string * string) list;  (** (name, text), dependency order *)
  seeded : seeded list;
  loc : int;  (** total source lines *)
}

val of_files : ?seeded:seeded list -> (string * string) list -> program
(** Rebuild a program around an edited file set (the reduction hook used
    by the difftest shrinker); [seeded] entries whose module file is
    gone are dropped, [loc] is recomputed. *)

val expected_static : flags:Annot.Flags.t -> bug_kind -> bool
(** Should the static checker flag this bug class under [flags]?
    [false] exactly for the declared blind spots: [Bfree_offset] /
    [Bfree_static] / [Bloop_*] / [Brealloc_lost] / [Bxproc_*] without
    their recovery flags, and [Bglobal_leak] / [Brefcount_use]
    always. *)

val expected_dynamic : executed:bool -> bug_kind -> [ `Error | `Leak | `Nothing ]
(** What the run-time baseline observes: a heap error, an end-of-run
    leak, or nothing (unexecuted carriers, and the null dereference that
    hides on the untaken malloc-failure path). *)

val generate :
  ?seed:int -> ?modules:int -> ?fns_per_module:int -> ?annotated:bool ->
  ?rich:bool -> ?bugs:bug_kind list -> ?coverage:float -> unit -> program
(** Generate a program.  [bugs] are assigned to modules round-robin;
    [coverage] is the fraction of bug carriers the driver executes.
    [rich] (with [annotated]) additionally declares the properties the
    generated bodies already prove — [notnull] on unconditionally
    dereferenced parameters and never-null allocating returns — the
    fuller ground truth the inference benchmark strips and re-derives;
    default output is byte-identical to [rich:false]. *)

val analyse : ?flags:Annot.Flags.t -> program -> Sema.program
(** Parse and analyse into a fresh stdlib environment. *)

val static_check : ?flags:Annot.Flags.t -> program -> Check.result

val dynamic_check :
  ?flags:Annot.Flags.t -> ?max_steps:int -> ?oom_fail:int -> program ->
  Rtcheck.result
(** [max_steps] bounds the interpreter (the fuzzer's [-timeout-steps]);
    [oom_fail] forces heap allocation request #n to fail once (the OOM
    injection sweep). *)
