(** Synthetic C program generation.

    Section 7 evaluates LCLint on its own 100k-line sources, which we do
    not have; this generator produces programs with the same structural
    mix — abstract types with create/destroy/accessor/worker functions,
    annotated interfaces, cross-module call chains, a driver — at any
    requested size, plus controlled *bug seeding* for the
    static-vs-run-time detection experiments.

    Everything is deterministic in [seed]. *)

type rng = { mutable s : int }

let mk_rng seed = { s = (seed * 2654435761) land 0x3FFFFFFF }

let next r =
  r.s <- ((r.s * 1103515245) + 12345) land 0x3FFFFFFF;
  r.s

let rand_int r n = if n <= 0 then 0 else next r mod n

(** The bug classes used in the detection matrix (Section 7's residual-bug
    discussion plus the classes both tools aim at). *)
type bug_kind =
  | Bleak  (** storage never released (reassignment or drop) *)
  | Buse_after_free
  | Bdouble_free
  | Bnull_deref  (** missing null check on a malloc result *)
  | Buse_undef  (** read of an uninitialized field *)
  | Bfree_offset  (** free of an interior pointer (static misses by default) *)
  | Bfree_static  (** free of static storage (static misses by default) *)
  | Bglobal_leak
      (** storage reachable from a global, never freed before exit
          (static cannot see this; run-time leak checkers can) *)
  | Bloop_leak
      (** alloc on every loop iteration, freed only once after the loop:
          invisible to the zero-or-one-times heuristic, caught under
          [+loopexec] *)
  | Bloop_use_after_free
      (** storage released inside a loop body and used again on the next
          trip around the back edge *)
  | Bloop_null_deref
      (** pointer re-nulled inside a loop, dereferenced on a later
          iteration *)
  | Brealloc_lost
      (** [p = realloc(p, n)]: the only reference overwritten with a
          result that may be null — storage lost exactly when the
          allocation fails (caught under [+allocmodel]; manifests
          dynamically only under OOM injection) *)
  | Boom_leak
      (** held storage leaked on the bail path of a later allocation
          failure (static catches the unreleased path; manifests
          dynamically only under OOM injection) *)
  | Brefcount_leak
      (** a [newref] function returns storage with no reference to give
          out: the count balance is broken (static-only; no run-time
          manifestation) *)
  | Brefcount_use
      (** a borrowed (uncounted) reference stashed through a helper
          outlives the last counted reference: use after free at run
          time, invisible to the intraprocedural checker *)
  | Bxproc_callee_free
      (** an unannotated helper frees its parameter; the caller reads it
          afterwards — use after free at run time, invisible without the
          [+xproc] effect summaries *)
  | Bxproc_callee_free_df
      (** an unannotated helper frees its parameter; the caller frees it
          again — double free at run time, caught under [+xproc] *)
  | Bxproc_cond_release
      (** an unannotated helper frees its parameter on one branch only;
          the caller frees unconditionally — double free when the branch
          is taken, caught under [+xproc] (conditional-release effect) *)
  | Bxproc_escape_store
      (** an unannotated helper stashes its parameter in a global; the
          caller frees the storage and reads it back through the global
          — use after free at run time, caught under [+xproc] (escape
          effect → [escapefree]) *)

let all_bug_kinds =
  [
    Bleak; Buse_after_free; Bdouble_free; Bnull_deref; Buse_undef;
    Bfree_offset; Bfree_static; Bglobal_leak; Bloop_leak;
    Bloop_use_after_free; Bloop_null_deref; Brealloc_lost; Boom_leak;
    Brefcount_leak; Brefcount_use; Bxproc_callee_free;
    Bxproc_callee_free_df; Bxproc_cond_release; Bxproc_escape_store;
  ]

let bug_kind_string = function
  | Bleak -> "leak"
  | Buse_after_free -> "use-after-free"
  | Bdouble_free -> "double-free"
  | Bnull_deref -> "null-deref"
  | Buse_undef -> "use-undef"
  | Bfree_offset -> "free-offset"
  | Bfree_static -> "free-static"
  | Bglobal_leak -> "global-leak"
  | Bloop_leak -> "loop-leak"
  | Bloop_use_after_free -> "loop-use-after-free"
  | Bloop_null_deref -> "loop-null-deref"
  | Brealloc_lost -> "realloc-lost"
  | Boom_leak -> "oom-leak"
  | Brefcount_leak -> "refcount-leak"
  | Brefcount_use -> "refcount-use"
  | Bxproc_callee_free -> "xproc-callee-free"
  | Bxproc_callee_free_df -> "xproc-callee-free-df"
  | Bxproc_cond_release -> "xproc-cond-release"
  | Bxproc_escape_store -> "xproc-escape-store"

(** Does this bug class need a loop back edge to manifest?  These are
    invisible to the paper's zero-or-one-times loop heuristic and only
    detectable statically under [+loopexec]. *)
let loop_carried = function
  | Bloop_leak | Bloop_use_after_free | Bloop_null_deref -> true
  | Bleak | Buse_after_free | Bdouble_free | Bnull_deref | Buse_undef
  | Bfree_offset | Bfree_static | Bglobal_leak | Brealloc_lost | Boom_leak
  | Brefcount_leak | Brefcount_use | Bxproc_callee_free
  | Bxproc_callee_free_df | Bxproc_cond_release | Bxproc_escape_store ->
      false

(** Does this bug class only manifest dynamically when an allocation is
    forced to fail (the OOM fault-injection sweep)?  These hide on the
    untaken failure path of every ordinary run. *)
let oom_carried = function
  | Brealloc_lost | Boom_leak -> true
  | Bleak | Buse_after_free | Bdouble_free | Bnull_deref | Buse_undef
  | Bfree_offset | Bfree_static | Bglobal_leak | Bloop_leak
  | Bloop_use_after_free | Bloop_null_deref | Brefcount_leak | Brefcount_use
  | Bxproc_callee_free | Bxproc_callee_free_df | Bxproc_cond_release
  | Bxproc_escape_store ->
      false

(** One seeded bug: which function carries it, and whether the generated
    driver actually exercises that function (run-time tools only see
    executed bugs). *)
type seeded = {
  sb_kind : bug_kind;
  sb_module : int;
  sb_fn : string;  (** the carrier function's name *)
  sb_executed : bool;
}

type program = {
  files : (string * string) list;  (** (name, text) in dependency order *)
  seeded : seeded list;
  loc : int;  (** total source lines *)
}

let sb_file (sb : seeded) = Printf.sprintf "m%d.c" sb.sb_module

let count_lines files =
  List.fold_left
    (fun acc (_, text) -> acc + List.length (String.split_on_char '\n' text))
    0 files

(** Rebuild a program value around an edited file set — the reduction
    hook the delta-debugging shrinker uses: it drops modules, functions
    and statements from the texts and re-validates the divergence on the
    result.  [seeded] is carried over for the entries whose module file
    survived (the shrinker tracks its own divergence key anyway). *)
let of_files ?(seeded = []) (files : (string * string) list) : program =
  let kept_names = List.map fst files in
  {
    files;
    seeded = List.filter (fun sb -> List.mem (sb_file sb) kept_names) seeded;
    loc = count_lines files;
  }

(* ------------------------------------------------------------------ *)
(* Expected-detection metadata                                         *)
(* ------------------------------------------------------------------ *)

(** Should the static checker flag this seeded bug class under [flags]?
    Footnote 8's classes need the [+freeoffset]/[+freestatic]
    extensions; the global-cache leak is invisible to the
    intraprocedural analysis under any flags (the differential oracle's
    declared blind spots, pinned by test_check.ml's blind-spot suite). *)
let expected_static ~(flags : Annot.Flags.t) = function
  | Bfree_offset -> flags.Annot.Flags.free_offset
  | Bfree_static -> flags.Annot.Flags.free_static
  | Bglobal_leak -> false
  | Bloop_leak | Bloop_use_after_free | Bloop_null_deref ->
      (* loop-carried: needs the [+loopexec] fixpoint to see the back
         edge *)
      flags.Annot.Flags.loop_exec
  | Brealloc_lost ->
      (* needs the path-sensitive allocator model to see that the old
         block is still allocated on realloc's failure branch *)
      flags.Annot.Flags.alloc_model
  | Brefcount_use ->
      (* the stale borrow travels through a helper's global: invisible
         to the intraprocedural analysis under any flags *)
      false
  | Bxproc_callee_free | Bxproc_callee_free_df | Bxproc_cond_release
  | Bxproc_escape_store ->
      (* the release/escape happens inside a locally unannotated helper:
         needs the interprocedural effect summaries *)
      flags.Annot.Flags.xproc
  | Bleak | Buse_after_free | Bdouble_free | Bnull_deref | Buse_undef
  | Boom_leak | Brefcount_leak ->
      true

(** What the run-time baseline observes for this class when the driver
    executes (or skips) the carrier.  [`Error] is a detected heap error,
    [`Leak] an end-of-run leak report, [`Nothing] no observation — the
    null dereference hides on the untaken malloc-failure path even when
    the carrier runs. *)
let expected_dynamic ~(executed : bool) = function
  | _ when not executed -> `Nothing
  | Bnull_deref -> `Nothing
  | Brealloc_lost | Boom_leak ->
      (* the failure path is untaken unless an allocation is injected to
         fail: see {!oom_carried} and the OOM sweep *)
      `Nothing
  | Brefcount_leak -> `Nothing
  | Bleak | Bglobal_leak | Bloop_leak -> `Leak
  | Buse_after_free | Bdouble_free | Buse_undef | Bfree_offset | Bfree_static
  | Bloop_use_after_free | Bloop_null_deref | Brefcount_use
  | Bxproc_callee_free | Bxproc_callee_free_df | Bxproc_cond_release
  | Bxproc_escape_store ->
      `Error

(* ------------------------------------------------------------------ *)
(* Module body generation                                              *)
(* ------------------------------------------------------------------ *)

let buf_add = Buffer.add_string

(** Emit one module: a record type, an annotated create/destroy pair,
    accessors, and small worker functions.  When [annotated] is false the
    memory annotations are omitted (the "starting program" of the paper's
    iteration).  [rich] additionally declares the properties the bodies
    already prove but the base templates leave implicit — [notnull] on
    unconditionally dereferenced parameters and on never-null allocating
    returns — giving the inference benchmarks a fuller ground truth to
    strip and re-derive.  [bug] optionally seeds one bug into a dedicated
    carrier function. *)
let gen_module ~rich ~annotated ~(rng : rng) ~(index : int)
    ~(fns : int) ~(bug : bug_kind option) : string * string list =
  let b = Buffer.create 4096 in
  let m = Printf.sprintf "m%d" index in
  let an s = if annotated then s ^ " " else "" in
  let rich_an s = if annotated && rich then s ^ " " else "" in
  let pf fmt = Printf.ksprintf (buf_add b) fmt in
  pf "/* module %s -- generated */\n\n" m;
  pf "typedef struct _%s_rec {\n" m;
  pf "  int id;\n";
  pf "  int weight;\n";
  pf "  %schar *label;\n" (an "/*@null@*/ /*@only@*/");
  pf "  char tag[8];\n";
  pf "} %s_rec;\n\n" m;
  (* create *)
  pf "%s%s%s_rec *%s_create(int id)\n{\n" (an "/*@only@*/")
    (rich_an "/*@notnull@*/") m m;
  pf "  %s_rec *r = (%s_rec *) malloc(sizeof(%s_rec));\n" m m m;
  pf "  if (r == NULL) {\n    exit(EXIT_FAILURE);\n  }\n";
  pf "  r->id = id;\n";
  pf "  r->weight = id * 3 + 1;\n";
  pf "  r->label = NULL;\n";
  pf "  r->tag[0] = '\\0';\n";
  pf "  return r;\n}\n\n";
  (* set label *)
  pf "void %s_set_label(%s%s_rec *r, char *text)\n{\n" m
    (rich_an "/*@notnull@*/") m;
  pf "  if (r->label != NULL) {\n    free(r->label);\n  }\n";
  pf "  r->label = strdup(text);\n";
  pf "}\n\n";
  (* destroy *)
  pf "void %s_destroy(%s%s%s_rec *r)\n{\n" m (an "/*@only@*/")
    (rich_an "/*@notnull@*/") m;
  pf "  if (r->label != NULL) {\n    free(r->label);\n  }\n";
  pf "  free(r);\n}\n\n";
  (* accessors *)
  pf "int %s_weight(%s%s_rec *r)\n{\n  return r->weight;\n}\n\n" m
    (rich_an "/*@notnull@*/") m;
  pf "void %s_bump(%s%s_rec *r, int by)\n{\n" m (rich_an "/*@notnull@*/") m;
  pf "  r->weight = r->weight + by;\n}\n\n";
  (* worker functions with loops/branches to give the checker real work *)
  for k = 0 to max 0 (fns - 1) do
    let choice = rand_int rng 3 in
    match choice with
    | 0 ->
        pf "int %s_work%d(int n)\n{\n" m k;
        pf "  int acc;\n  int i;\n  acc = 0;\n";
        pf "  for (i = 0; i < n; i++) {\n";
        pf "    if (i %% %d == 0) {\n      acc = acc + i;\n    } else {\n      acc = acc - 1;\n    }\n"
          (2 + rand_int rng 5);
        pf "  }\n  return acc;\n}\n\n"
    | 1 ->
        pf "int %s_scan%d(%schar *s)\n{\n" m k (rich_an "/*@notnull@*/");
        pf "  int count;\n  count = 0;\n";
        pf "  while (*s != '\\0') {\n";
        pf "    if (*s == '%c') {\n      count = count + 1;\n    }\n"
          (Char.chr (Char.code 'a' + rand_int rng 26));
        pf "    s = s + 1;\n  }\n  return count;\n}\n\n"
    | _ ->
        pf "%s%s%s_rec *%s_clone%d(%s%s_rec *r)\n{\n" (an "/*@only@*/")
          (rich_an "/*@notnull@*/") m m k (rich_an "/*@notnull@*/") m;
        pf "  %s_rec *c = %s_create(r->id);\n" m m;
        pf "  c->weight = r->weight;\n";
        pf "  if (r->label != NULL) {\n";
        pf "    %s_set_label(c, r->label);\n" m;
        pf "  }\n  return c;\n}\n\n"
  done;
  (* optional archetype sections: a linked list and a string buffer,
     mirroring the data-structure mix of real C programs (and of the
     paper's employee database) *)
  if fns > 2 then begin
    pf "typedef struct _%s_node {\n" m;
    pf "  int value;\n";
    pf "  %sstruct _%s_node *next;\n" (an "/*@null@*/ /*@only@*/") m;
    pf "} %s_node;\n\n" m;
    pf "%s%s_node *%s_push(%s%s_node *head, int value)\n{\n"
      (if annotated && rich then "/*@only@*/ /*@notnull@*/ "
       else an "/*@null@*/ /*@only@*/")
      m m
      (an "/*@null@*/ /*@only@*/") m;
    pf "  %s_node *n = (%s_node *) malloc(sizeof(%s_node));\n" m m m;
    pf "  if (n == NULL) {\n    exit(EXIT_FAILURE);\n  }\n";
    pf "  n->value = value;\n";
    pf "  n->next = head;\n";
    pf "  return n;\n}\n\n";
    pf "int %s_sum(%s%s_node *head)\n{\n" m (an "/*@null@*/") m;
    pf "  int total;\n  %s_node *p;\n  total = 0;\n" m;
    pf "  p = head;\n";
    pf "  while (p != NULL) {\n";
    pf "    total = total + p->value;\n";
    pf "    p = p->next;\n";
    pf "  }\n  return total;\n}\n\n";
    (* ownership-consuming recursive destructor: the idiom the checker
       (like LCLint) can bless -- each next field is transferred to the
       recursive call before the node itself is released *)
    pf "void %s_drop(%s%s_node *head)\n{\n" m (an "/*@null@*/ /*@only@*/") m;
    pf "  if (head != NULL) {\n";
    pf "    if (head->next != NULL) {\n";
    pf "      %s_drop(head->next);\n" m;
    pf "    }\n";
    pf "    free(head);\n";
    pf "  }\n}\n\n"
  end;
  if fns > 4 then begin
    pf "%s%schar *%s_describe(%s%s_rec *r)\n{\n" (an "/*@only@*/")
      (rich_an "/*@notnull@*/") m (rich_an "/*@notnull@*/") m;
    pf "  char *buf = (char *) malloc(64);\n";
    pf "  if (buf == NULL) {\n    exit(EXIT_FAILURE);\n  }\n";
    pf "  sprintf(buf, \"rec %%d w=%%d\", r->id, r->weight);\n";
    pf "  return buf;\n}\n\n";
    pf "int %s_same_label(%s%s_rec *a, char *text)\n{\n" m
      (rich_an "/*@notnull@*/") m;
    pf "  if (a->label == NULL) {\n    return FALSE;\n  }\n";
    pf "  return strcmp(a->label, text) == 0;\n}\n\n"
  end;
  (* seeded bug carrier *)
  let carriers = ref [] in
  (match bug with
  | None -> ()
  | Some kind ->
      let fn = Printf.sprintf "%s_buggy" m in
      carriers := [ fn ];
      (match kind with
      | Bleak ->
          pf "void %s(void)\n{\n" fn;
          pf "  %s_rec *r = %s_create(1);\n" m m;
          pf "  %s_rec *s = %s_create(2);\n" m m;
          pf "  r = s;\n" (* the first record is lost *);
          pf "  %s_destroy(r);\n}\n\n" m
      | Buse_after_free ->
          pf "int %s(void)\n{\n" fn;
          pf "  %s_rec *r = %s_create(3);\n" m m;
          pf "  %s_destroy(r);\n" m;
          pf "  return r->weight;\n}\n\n"
      | Bdouble_free ->
          pf "void %s(void)\n{\n" fn;
          pf "  %s_rec *r = %s_create(4);\n" m m;
          pf "  free(r);\n";
          pf "  free(r);\n}\n\n"
      | Bnull_deref ->
          pf "int %s(void)\n{\n" fn;
          pf "  %s_rec *r = (%s_rec *) malloc(sizeof(%s_rec));\n" m m m;
          pf "  r->id = 9;\n" (* no null check: malloc may return NULL *);
          pf "  free(r);\n  return 0;\n}\n\n"
      | Buse_undef ->
          pf "int %s(void)\n{\n" fn;
          pf "  %s_rec *r = (%s_rec *) malloc(sizeof(%s_rec));\n" m m m;
          pf "  int w;\n";
          pf "  if (r == NULL) {\n    exit(EXIT_FAILURE);\n  }\n";
          pf "  w = r->weight;\n" (* weight never initialized *);
          pf "  free(r);\n";
          pf "  if (w > 10) {\n    return 1;\n  }\n";
          pf "  return 0;\n}\n\n"
      | Bfree_offset ->
          pf "void %s(void)\n{\n" fn;
          pf "  char *p = (char *) malloc(16);\n";
          pf "  if (p == NULL) {\n    exit(EXIT_FAILURE);\n  }\n";
          pf "  p = p + 4;\n";
          pf "  free(p);\n}\n\n"
      | Bfree_static ->
          pf "void %s(void)\n{\n" fn;
          pf "  char *p = \"static text\";\n";
          pf "  free(p);\n}\n\n"
      | Bglobal_leak ->
          pf "static %s%s_rec *%s_cache;\n\n" (an "/*@null@*/ /*@only@*/") m m;
          pf "void %s(void)\n{\n" fn;
          pf "  if (%s_cache != NULL) {\n    %s_destroy(%s_cache);\n  }\n" m m m;
          pf "  %s_cache = %s_create(7);\n" m m;
          pf "}\n\n" (* never freed before exit; reachable from a global *)
      | Bloop_leak ->
          (* one block leaks per iteration except the last; a single
             forward pass over the body sees one alloc, one free *)
          pf "void %s(void)\n{\n" fn;
          pf "  char *p = NULL;\n";
          pf "  int i;\n";
          pf "  i = 0;\n";
          pf "  while (i < 3) {\n";
          pf "    p = (char *) malloc(16);\n";
          pf "    if (p == NULL) {\n      exit(EXIT_FAILURE);\n    }\n";
          pf "    i = i + 1;\n";
          pf "  }\n";
          pf "  if (p != NULL) {\n    free(p);\n  }\n}\n\n"
      | Bloop_use_after_free ->
          (* released at the bottom of the body, used again at the top of
             the next trip: only a back edge connects release to use (the
             break keeps the storage from being freed twice) *)
          pf "void %s(void)\n{\n" fn;
          pf "  %s_rec *r = (%s_rec *) malloc(sizeof(%s_rec));\n" m m m;
          pf "  int i;\n";
          pf "  if (r == NULL) {\n    exit(EXIT_FAILURE);\n  }\n";
          pf "  i = 0;\n";
          pf "  while (1) {\n";
          pf "    r->weight = i;\n";
          pf "    if (i == 1) {\n      break;\n    }\n";
          pf "    free(r);\n";
          pf "    i = i + 1;\n";
          pf "  }\n}\n\n"
      | Bloop_null_deref ->
          (* re-nulled mid-loop, dereferenced on the following iteration *)
          pf "void %s(void)\n{\n" fn;
          pf "  char *p = (char *) malloc(8);\n";
          pf "  int i;\n";
          pf "  if (p == NULL) {\n    exit(EXIT_FAILURE);\n  }\n";
          pf "  i = 0;\n";
          pf "  while (i < 3) {\n";
          pf "    *p = 'x';\n";
          pf "    if (i == 1) {\n      free(p);\n      p = NULL;\n    }\n";
          pf "    i = i + 1;\n";
          pf "  }\n";
          pf "  if (p != NULL) {\n    free(p);\n  }\n}\n\n"
      | Brealloc_lost ->
          (* the only reference is overwritten with the realloc result:
             nothing leaks while realloc succeeds, but the old block is
             lost exactly when the allocation fails (return instead of
             exit, so an injected failure still reaches the end-of-run
             leak report) *)
          pf "void %s(void)\n{\n" fn;
          pf "  char *p = (char *) malloc(1);\n";
          pf "  if (p == NULL) {\n    return;\n  }\n";
          pf "  p[0] = 'x';\n";
          pf "  p = (char *) realloc(p, 2);\n";
          pf "  if (p == NULL) {\n    return;\n  }\n";
          pf "  p[0] = 'y';\n";
          pf "  free(p);\n}\n\n"
      | Boom_leak ->
          (* the bail path of the second allocation forgets the first
             block; only an injected failure takes that path *)
          pf "void %s(void)\n{\n" fn;
          pf "  char *a = (char *) malloc(1);\n";
          pf "  char *b;\n";
          pf "  if (a == NULL) {\n    return;\n  }\n";
          pf "  a[0] = 'a';\n";
          pf "  b = (char *) malloc(1);\n";
          pf "  if (b == NULL) {\n    return;\n  }\n";
          pf "  b[0] = 'b';\n";
          pf "  free(a);\n";
          pf "  free(b);\n}\n\n"
      | Brefcount_leak ->
          (* a newref result with no reference behind it: the count
             balance is broken at the return *)
          pf "%schar *%s(void)\n{\n" (an "/*@newref@*/") fn;
          pf "  return \"%s-tag\";\n}\n\n" m
      | Brefcount_use ->
          (* the helper stashes an uncounted borrow in a global; the
             borrow outlives the only counted reference *)
          pf "static %s%s_rec *%s_borrowed;\n\n"
            (an "/*@null@*/ /*@dependent@*/") m m;
          pf "void %s_stash(%s%s_rec *r)\n{\n" m (an "/*@dependent@*/") m;
          pf "  %s_borrowed = r;\n}\n\n" m;
          pf "void %s(void)\n{\n" fn;
          pf "  %s_rec *r = %s_create(6);\n" m m;
          pf "  %s_stash(r);\n" m;
          pf "  %s_destroy(r);\n" m;
          pf "  if (%s_borrowed != NULL) {\n" m;
          pf "    %s_borrowed->weight = 2;\n  }\n}\n\n" m
      (* The xproc helpers below are deliberately left unannotated even
         in annotated mode: the release/escape lives only in the helper
         body, where the default checker cannot see it from a call site. *)
      | Bxproc_callee_free ->
          pf "void %s_xrel(%s_rec *r)\n{\n  free(r);\n}\n\n" m m;
          pf "int %s(void)\n{\n" fn;
          pf "  %s_rec *r = (%s_rec *) malloc(sizeof(%s_rec));\n" m m m;
          pf "  if (r == NULL) {\n    exit(EXIT_FAILURE);\n  }\n";
          pf "  r->weight = 5;\n";
          pf "  %s_xrel(r);\n" m;
          pf "  return r->weight;\n}\n\n" (* read after the callee freed *)
      | Bxproc_callee_free_df ->
          pf "void %s_xdrop(%s_rec *r)\n{\n  free(r);\n}\n\n" m m;
          pf "void %s(void)\n{\n" fn;
          pf "  %s_rec *r = (%s_rec *) malloc(sizeof(%s_rec));\n" m m m;
          pf "  if (r == NULL) {\n    exit(EXIT_FAILURE);\n  }\n";
          pf "  r->weight = 1;\n";
          pf "  %s_xdrop(r);\n" m;
          pf "  free(r);\n}\n\n" (* second free of the same block *)
      | Bxproc_cond_release ->
          pf "int %s_xmaybe(%s_rec *r, int c)\n{\n" m m;
          pf "  if (c > 0) {\n    free(r);\n    return 1;\n  }\n";
          pf "  return 0;\n}\n\n";
          pf "void %s(void)\n{\n" fn;
          pf "  %s_rec *r = (%s_rec *) malloc(sizeof(%s_rec));\n" m m m;
          pf "  if (r == NULL) {\n    exit(EXIT_FAILURE);\n  }\n";
          pf "  r->weight = 3;\n";
          pf "  %s_xmaybe(r, 1);\n" m (* the releasing branch is taken *);
          pf "  free(r);\n}\n\n"
      | Bxproc_escape_store ->
          pf "static %s_rec *%s_xslot;\n\n" m m;
          pf "void %s_xkeep(%s_rec *r)\n{\n  %s_xslot = r;\n}\n\n" m m m;
          pf "int %s(void)\n{\n" fn;
          pf "  %s_rec *r = (%s_rec *) malloc(sizeof(%s_rec));\n" m m m;
          pf "  if (r == NULL) {\n    exit(EXIT_FAILURE);\n  }\n";
          pf "  r->weight = 8;\n";
          pf "  %s_xkeep(r);\n" m;
          pf "  free(r);\n";
          pf "  if (%s_xslot != NULL) {\n" m;
          pf "    return %s_xslot->weight;\n  }\n" m (* dangling read *);
          pf "  return 0;\n}\n\n"));
  (Buffer.contents b, !carriers)

(* ------------------------------------------------------------------ *)
(* Whole programs                                                      *)
(* ------------------------------------------------------------------ *)

(** Generate a program.

    - [modules]: number of modules;
    - [fns_per_module]: worker functions per module (size lever);
    - [annotated]: include the memory annotations;
    - [bugs]: bug kinds to seed, assigned to modules round-robin;
    - [coverage]: fraction (0..1) of seeded-bug carriers the driver calls
      — run-time checking sees only what runs. *)
let generate ?(seed = 42) ?(modules = 4) ?(fns_per_module = 6)
    ?(annotated = true) ?(rich = false) ?(bugs = []) ?(coverage = 1.0) () :
    program =
  let rng = mk_rng seed in
  let nbugs = List.length bugs in
  let seeded = ref [] in
  let files = ref [] in
  for i = 0 to modules - 1 do
    let bug = List.nth_opt bugs i in
    let text, carriers =
      gen_module ~rich ~annotated ~rng ~index:i ~fns:fns_per_module ~bug
    in
    files := (Printf.sprintf "m%d.c" i, text) :: !files;
    List.iter
      (fun fn ->
        match bug with
        | Some kind ->
            seeded :=
              { sb_kind = kind; sb_module = i; sb_fn = fn; sb_executed = false }
              :: !seeded
        | None -> ())
      carriers
  done;
  ignore nbugs;
  (* the driver: exercise the clean API everywhere, and a [coverage]
     fraction of the bug carriers *)
  let b = Buffer.create 2048 in
  let pf fmt = Printf.ksprintf (buf_add b) fmt in
  pf "/* driver -- generated */\n\nint main(void)\n{\n";
  pf "  int total;\n  total = 0;\n";
  for i = 0 to modules - 1 do
    let m = Printf.sprintf "m%d" i in
    pf "  {\n";
    pf "    %s_rec *r = %s_create(%d);\n" m m i;
    pf "    %s_set_label(r, \"item\");\n" m;
    pf "    %s_bump(r, %d);\n" m (1 + rand_int rng 9);
    pf "    total = total + %s_weight(r);\n" m;
    if fns_per_module > 4 then begin
      pf "    {\n      char *d = %s_describe(r);\n" m;
      pf "      printf(\"%%s\\n\", d);\n";
      pf "      free(d);\n    }\n"
    end;
    pf "    %s_destroy(r);\n" m;
    pf "  }\n";
    if fns_per_module > 2 then begin
      pf "  {\n    %s_node *head = NULL;\n" m;
      pf "    head = %s_push(head, 1);\n" m;
      pf "    head = %s_push(head, 2);\n" m;
      pf "    total = total + %s_sum(head);\n" m;
      pf "    %s_drop(head);\n  }\n" m
    end
  done;
  let n_seeded = List.length !seeded in
  let n_exec = int_of_float (ceil (coverage *. float_of_int n_seeded)) in
  let seeded_exec =
    List.mapi (fun idx sb -> { sb with sb_executed = idx < n_exec }) !seeded
  in
  List.iter
    (fun sb -> if sb.sb_executed then pf "  %s();\n" sb.sb_fn)
    seeded_exec;
  pf "  printf(\"total %%d\\n\", total);\n";
  pf "  return 0;\n}\n";
  let files = List.rev !files @ [ ("driver.c", Buffer.contents b) ] in
  { files; seeded = seeded_exec; loc = count_lines files }

(** Analyse a generated program into a fresh stdlib environment. *)
let analyse ?(flags = Annot.Flags.default) (p : program) : Sema.program =
  let prog = Stdspec.environment ~flags () in
  List.iter
    (fun (name, text) ->
      let typedefs =
        Hashtbl.fold (fun k _ acc -> k :: acc) prog.Sema.p_typedefs []
      in
      let tu = Cfront.Parser.parse_string ~typedefs ~file:name text in
      ignore (Sema.analyze ~flags ~into:prog tu))
    p.files;
  prog

(** Statically check a generated program; returns the kept reports. *)
let static_check ?(flags = Annot.Flags.default) (p : program) :
    Check.result =
  let prog = analyse ~flags p in
  Check.Checker.check_program prog;
  let table, errs = Check.Suppress.of_pragmas prog.Sema.p_pragmas in
  List.iter (Cfront.Diag.Collector.emit prog.Sema.diags) errs;
  let all = Cfront.Diag.Collector.sorted prog.Sema.diags in
  let kept, suppressed = Check.Suppress.filter table all in
  { Check.program = prog; reports = kept; suppressed }

(** Run a generated program under the run-time checker.  [max_steps]
    bounds execution (the fuzzer's [-timeout-steps]); [oom_fail] forces
    heap allocation request #n to fail (the OOM injection sweep). *)
let dynamic_check ?(flags = Annot.Flags.default) ?max_steps ?oom_fail
    (p : program) : Rtcheck.result =
  let prog = analyse ~flags p in
  Rtcheck.run ?max_steps ?oom_fail prog
