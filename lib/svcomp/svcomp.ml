(** SV-COMP MemSafety task adapter (see svcomp.mli for the scoring
    contract).  The [.yml] records are read with a purpose-built
    line-oriented parser — the SV-COMP task format only uses one level
    of nesting and scalar values, so a YAML library would be overkill
    (and the toolchain does not ship one). *)

type task = {
  t_name : string;
  t_file : string;
  t_expected : bool;
  t_subproperty : string option;
}

(* ------------------------------------------------------------------ *)
(* Task records *)

let strip_quotes s =
  let n = String.length s in
  if n >= 2 && ((s.[0] = '\'' && s.[n - 1] = '\'')
               || (s.[0] = '"' && s.[n - 1] = '"'))
  then String.sub s 1 (n - 2)
  else s

(* "key: value" anywhere in the record, at any indentation; list-item
   dashes are stripped so "  - property_file: ..." parses the same. *)
let field_of_line line =
  let line = String.trim line in
  let line =
    if String.length line >= 2 && String.sub line 0 2 = "- " then
      String.sub line 2 (String.length line - 2)
    else line
  in
  match String.index_opt line ':' with
  | None -> None
  | Some i ->
      let key = String.trim (String.sub line 0 i) in
      let v =
        String.trim (String.sub line (i + 1) (String.length line - i - 1))
      in
      if key = "" || v = "" then None else Some (key, strip_quotes v)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_record ~dir ~name text : (task, string) result =
  let fields =
    List.filter_map field_of_line (String.split_on_char '\n' text)
  in
  let find k = List.assoc_opt k fields in
  match (find "input_files", find "expected_verdict") with
  | None, _ -> Error (name ^ ": missing input_files")
  | _, None -> Error (name ^ ": missing expected_verdict")
  | Some input, Some verdict ->
      let expected =
        match String.lowercase_ascii verdict with
        | "true" -> Some true
        | "false" -> Some false
        | _ -> None
      in
      (match expected with
      | None -> Error (name ^ ": expected_verdict must be true or false")
      | Some t_expected ->
          let t_file =
            if Filename.is_relative input then Filename.concat dir input
            else input
          in
          Ok { t_name = name; t_file; t_expected;
               t_subproperty = find "subproperty" })

let load_dir dir : (task list, string) result =
  match Sys.readdir dir with
  | exception Sys_error m -> Error m
  | entries ->
      let ymls =
        Array.to_list entries
        |> List.filter (fun f -> Filename.check_suffix f ".yml")
        |> List.sort String.compare
      in
      if ymls = [] then Error (dir ^ ": no .yml task records")
      else
        List.fold_left
          (fun acc yml ->
            match acc with
            | Error _ as e -> e
            | Ok tasks -> (
                let name = Filename.remove_extension yml in
                match read_file (Filename.concat dir yml) with
                | exception Sys_error m -> Error m
                | text -> (
                    match parse_record ~dir ~name text with
                    | Ok t -> Ok (t :: tasks)
                    | Error _ as e -> e)))
          (Ok []) ymls
        |> Result.map List.rev

(* ------------------------------------------------------------------ *)
(* Scoring *)

type verdict = Vtrue | Vfalse | Vunknown

let verdict_string = function
  | Vtrue -> "true"
  | Vfalse -> "false"
  | Vunknown -> "unknown"

type scored = {
  s_task : task;
  s_verdict : verdict;
  s_codes : string list;
  s_detail : string;
}

(* The run-time error classes ({!Check.Errclass}) that violate each
   MemSafety subproperty. *)
let classes_of_subproperty = function
  | Some "valid-deref" -> [ "null-deref"; "use-after-free"; "use-undef" ]
  | Some "valid-free" -> [ "double-free"; "free-offset"; "free-static" ]
  | Some "valid-memtrack" -> [ "leak"; "global-leak" ]
  | Some _ | None ->
      [
        "null-deref"; "use-after-free"; "use-undef"; "double-free";
        "free-offset"; "free-static"; "leak"; "global-leak";
      ]

let static_reports ~flags src ~file : Cfront.Diag.t list =
  let prog = Stdspec.environment ~flags () in
  let typedefs =
    Hashtbl.fold (fun k _ acc -> k :: acc) prog.Sema.p_typedefs []
  in
  let tu = Cfront.Parser.parse_string ~typedefs ~file src in
  ignore (Sema.analyze ~flags ~into:prog tu);
  Check.Checker.check_program prog;
  let table, errs = Check.Suppress.of_pragmas prog.Sema.p_pragmas in
  List.iter (Cfront.Diag.Collector.emit prog.Sema.diags) errs;
  let all = Cfront.Diag.Collector.sorted prog.Sema.diags in
  let kept, _suppressed = Check.Suppress.filter table all in
  kept

let run_task ?(flags = Annot.Flags.default) (t : task) : scored =
  match read_file t.t_file with
  | exception Sys_error m ->
      { s_task = t; s_verdict = Vunknown; s_codes = [];
        s_detail = "cannot read input: " ^ m }
  | src -> (
      match static_reports ~flags src ~file:(Filename.basename t.t_file) with
      | exception Cfront.Diag.Fatal d ->
          { s_task = t; s_verdict = Vunknown; s_codes = [];
            s_detail = "parse failure: " ^ Cfront.Diag.to_string d }
      | exception e ->
          { s_task = t; s_verdict = Vunknown; s_codes = [];
            s_detail = "analysis failure: " ^ Printexc.to_string e }
      | reports ->
          let classes = classes_of_subproperty t.t_subproperty in
          let witnesses =
            List.filter
              (fun (d : Cfront.Diag.t) ->
                List.exists
                  (fun c -> List.mem c classes)
                  (Check.Errclass.of_code d.Cfront.Diag.code))
              reports
          in
          if witnesses <> [] then
            { s_task = t; s_verdict = Vfalse;
              s_codes =
                List.sort_uniq String.compare
                  (List.map (fun (d : Cfront.Diag.t) -> d.Cfront.Diag.code)
                     witnesses);
              s_detail = "" }
          else if reports = [] then
            { s_task = t; s_verdict = Vtrue; s_codes = []; s_detail = "" }
          else
            (* reports outside the subproperty: cannot certify the task
               clean, but there is no witness for the violation either *)
            { s_task = t; s_verdict = Vunknown; s_codes = [];
              s_detail =
                Printf.sprintf
                  "%d diagnostics outside subproperty %s"
                  (List.length reports)
                  (Option.value t.t_subproperty ~default:"<any>") })

type summary = {
  n_tasks : int;
  n_correct_true : int;
  n_correct_false : int;
  n_unsound : int;
  n_imprecise : int;
  n_unknown : int;
}

let summarize (scored : scored list) : summary =
  List.fold_left
    (fun acc s ->
      let acc = { acc with n_tasks = acc.n_tasks + 1 } in
      match (s.s_task.t_expected, s.s_verdict) with
      | true, Vtrue -> { acc with n_correct_true = acc.n_correct_true + 1 }
      | false, Vfalse -> { acc with n_correct_false = acc.n_correct_false + 1 }
      | false, Vtrue -> { acc with n_unsound = acc.n_unsound + 1 }
      | true, Vfalse -> { acc with n_imprecise = acc.n_imprecise + 1 }
      | _, Vunknown -> { acc with n_unknown = acc.n_unknown + 1 })
    {
      n_tasks = 0;
      n_correct_true = 0;
      n_correct_false = 0;
      n_unsound = 0;
      n_imprecise = 0;
      n_unknown = 0;
    }
    scored
