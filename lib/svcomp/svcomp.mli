(** SV-COMP MemSafety task adapter: a yardstick that scores the static
    checker against a directory of single-file verification tasks in
    the SV-COMP layout (a [.c] file described by a [.yml] record with
    an expected verdict).

    The MemSafety property splits into the three standard
    subproperties: [valid-deref] (no invalid dereference), [valid-free]
    (no invalid deallocation), [valid-memtrack] (all allocated memory
    is tracked and released).  A task's [.yml] names the subproperty
    the expected-[false] verdict violates.

    Scoring is deliberately conservative: the checker claims [Vfalse]
    when it reports a diagnostic witnessing the task's subproperty,
    [Vtrue] when it reports nothing at all, and [Vunknown] when the
    task cannot be analysed (parse failure, unsupported construct) or
    when the only reports are outside the subproperty.  The soundness
    gate is: no [Vtrue] on an expected-[false] task. *)

type task = {
  t_name : string;  (** yml basename without extension *)
  t_file : string;  (** path to the C input file *)
  t_expected : bool;  (** the expected verdict *)
  t_subproperty : string option;
      (** [valid-deref] / [valid-free] / [valid-memtrack]; [None] means
          any MemSafety violation *)
}

val load_dir : string -> (task list, string) result
(** Scan a directory for [*.yml] task records (sorted by name).  A
    record needs [input_files] and an [expected_verdict]; relative
    input paths resolve against the directory. *)

type verdict = Vtrue | Vfalse | Vunknown

val verdict_string : verdict -> string

type scored = {
  s_task : task;
  s_verdict : verdict;
  s_codes : string list;  (** diagnostic codes behind a [Vfalse] *)
  s_detail : string;  (** why, for [Vunknown] *)
}

val run_task : ?flags:Annot.Flags.t -> task -> scored
(** Analyse one task file in a fresh standard-library environment and
    score the checker's verdict against the subproperty. *)

type summary = {
  n_tasks : int;
  n_correct_true : int;  (** expected true, claimed true *)
  n_correct_false : int;  (** expected false, claimed false *)
  n_unsound : int;  (** expected false, claimed TRUE — must be zero *)
  n_imprecise : int;  (** expected true, claimed false *)
  n_unknown : int;
}

val summarize : scored list -> summary
