(** Top-level checking API: parse (annotations included), extract
    interfaces, check every function body, apply stylized-comment
    suppression.  Diagnostics come back in source order. *)

module State = State
module Sref = Sref
module Store = Store
module Checker = Checker
module Suppress = Suppress
module Libspec = Libspec
module Errclass = Errclass
module Flags = Annot.Flags

type result = {
  program : Sema.program;
  reports : Cfront.Diag.t list;  (** kept diagnostics, source order *)
  suppressed : Cfront.Diag.t list;  (** silenced by stylized comments *)
}

val report_count : result -> int
val by_code : result -> string -> Cfront.Diag.t list

val run_tunit : ?flags:Flags.t -> ?into:Sema.program -> Cfront.Ast.tunit -> result
(** Check a parsed translation unit.  [into] pre-loads interface libraries
    (see {!Libspec}) for modular checking. *)

val run : ?flags:Flags.t -> ?into:Sema.program -> file:string -> string -> result
(** Parse and check a source string. *)

val render_reports : result -> string
(** LCLint-style rendering of the kept diagnostics. *)

val summaries : result -> string list
(** One primary line per message. *)

val codes : result -> string list
(** The diagnostic codes, in report order. *)
