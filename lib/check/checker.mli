(** The memory checker: per-procedure abstract interpretation driven by
    interface annotations (paper, Sections 2 and 5).

    Properties reproduced from the paper: each function is checked
    independently against the annotations of what it calls; loops are
    analysed as executing zero or one times (no fixpoints); guard
    refinements track null tests (including [truenull]/[falsenull]);
    confluence points merge branch states and report irreconcilable ones;
    parameters are modelled as a local variable aliasing the externally
    visible reference ([l] vs [argl]).

    Diagnostics accumulate in the program's collector; most callers want
    the {!Check} facade instead. *)

(** Raw abstract state at one procedure exit, observed before the exit
    checks replace anomalous states with error markers.  Annotation
    inference abstracts these observations into per-procedure summaries. *)
type exit_info = {
  xi_loc : Cfront.Loc.t;
  xi_ret : (State.nullstate * State.allocstate) option;
      (** the returned value's states, when a pointer value is returned *)
  xi_params : (State.defstate * State.allocstate) array;
      (** externally visible view of each parameter, by index *)
}

val check_fundef :
  ?diags:Cfront.Diag.Collector.t ->
  ?exit_obs:(exit_info -> unit) ->
  ?summaries:Summary.table ->
  Sema.program -> Sema.funsig -> Cfront.Ast.fundef -> unit
(** Check one function definition against its interface.  [diags]
    redirects messages to a scratch collector (inference probes);
    [exit_obs] is called at every reachable exit with the raw state
    (summary extraction); [summaries] supplies interprocedural effect
    summaries, consulted at unannotated call-site slots when the
    program's flags enable [+xproc] (pass the {!Summary.of_program}
    table; without it [+xproc] has no effect on this procedure). *)

val check_program : Sema.program -> unit
(** Check every function defined in the program, in source order.
    Computes the {!Summary} table first when the program's flags enable
    [+xproc]. *)
