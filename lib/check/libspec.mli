(** Interface libraries for modular checking (Section 7: "By using
    libraries to store interface information, a representative 5000 line
    module is checked in under 10 seconds").

    A library is a program's externally visible interface — typedefs,
    struct layouts, globals and function signatures with their annotations
    — rendered as an annotated C header; loading is just parsing it back
    into a program environment. *)

val decl_string : string -> Sema.Ctype.t -> string
(** [decl_string name ty] renders a C declaration of [name] with semantic
    type [ty] (inside-out declarator syntax). *)

val annots_prefix : Annot.set -> string
(** The [/*@...@*/] qualifier prefix for an annotation set.  Renders the
    inference-provenance bit as the extension word [inferred] (which
    {!Annot.of_annots} parses back), so dumped libraries round-trip
    synthesized interfaces faithfully. *)

(** {1 Versioned, hash-stamped persistence}

    Every on-disk artifact — interface libraries here, the incremental
    service's summary caches in [Incr] — is framed the same way: a
    [/* olclint <kind> format <version> */] line, a [/* stamp <md5> */]
    line over the payload, then the payload.  Readers reject wrong
    kinds, wrong versions and corrupted payloads. *)

val library_kind : string
val library_version : int

val stamp : kind:string -> version:int -> string -> string
(** Frame a payload with the kind/version header and content stamp. *)

val unstamp : kind:string -> string -> (int * string, string) result
(** Parse and verify a stamped artifact; [Ok (version, payload)] only
    when the kind matches and the payload digests to the stamp. *)

val is_stamped : string -> bool
(** Whether the text begins with a stamped-artifact header (as opposed
    to a raw hand-written annotated header). *)

val save : Sema.program -> string
(** Render the public interface (static definitions are omitted) as a
    stamped artifact of kind {!library_kind}. *)

val load :
  ?flags:Annot.Flags.t -> ?into:Sema.program -> file:string -> string ->
  Sema.program
(** Parse a library (produced by {!save} or hand-written) into a fresh or
    existing program environment.  Stamped artifacts are verified first;
    a version or stamp mismatch raises {!Cfront.Diag.Fatal}. *)
