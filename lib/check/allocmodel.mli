(** Allocator-family table for the [+allocmodel] path-sensitive
    allocator semantics (realloc NULL-branch resurrection, the
    [realloclost] diagnostic, calloc/aligned_alloc definedness
    bookkeeping). *)

type family =
  | Alloc of { zeroed : bool }
      (** malloc-like: returns a fresh block, contents defined iff
          [zeroed] *)
  | Realloc
      (** realloc-like: consumes its first pointer argument only when
          the result is non-null *)

val classify : string -> family option
(** Classify a standard allocator by name; [None] outside the modeled
    family. *)

val is_realloc : string -> bool

val result_def : string -> State.defstate option
(** The result's definition state under the model for a modeled fresh
    allocation; [None] leaves the annotation-derived state untouched. *)
