(** The static half of the differential oracle's error-class mapping.

    The run-time baseline names what it observes with
    [Rtcheck.Heap.error_class]; this module says which static diagnostic
    codes witness each of those classes, so the oracle can decide whether
    a dynamically observed error was "seen" statically.  The mapping is
    deliberately coarse — per file, per class — because the two tools
    report at different program points (the checker flags the anomaly in
    the source, the heap flags the access that trips on it).

    The vocabulary is shared with [Rtcheck.Heap]; test_difftest.ml pins
    the two sides against each other.  Codes map to *lists* of classes
    because one static code can witness several run-time manifestations:
    [usereleased] covers both a use after free and a double free (the
    second [free] is itself a use of released storage). *)

(* Every class the run-time side can produce.  "bounds" and "bad-arg"
   have no static witnesses: the Section-2 analysis does not track array
   bounds, and bad-argument errors are interpreter-level typing
   complaints. *)
let all_classes =
  [
    "null-deref"; "use-undef"; "use-after-free"; "double-free";
    "free-offset"; "free-static"; "leak"; "global-leak"; "bounds";
    "bad-arg";
  ]

(** The run-time classes a kept diagnostic with this code witnesses. *)
let of_code = function
  | "nullderef" | "nullpass" | "nullret" | "nullderive" | "globnull" ->
      [ "null-deref" ]
  | "usedef" | "compdef" -> [ "use-undef" ]
  | "usereleased" -> [ "use-after-free"; "double-free" ]
  | "escapefree" ->
      (* releasing storage a summarized callee stored away: the stashed
         reference dangles (a later use trips it) and a second release
         through it is a double free *)
      [ "use-after-free"; "double-free" ]
  | "freeoffset" -> [ "free-offset" ]
  | "freestatic" -> [ "free-static" ]
  | "mustfree" | "onlytrans" | "branchstate" | "globstate" | "compdestroy"
  | "refcount" | "realloclost" ->
      [ "leak" ]
  | _ -> []

(** The static codes that can witness a run-time class (the inverse
    direction, for reporting). *)
let codes_for cls =
  List.filter
    (fun code -> List.mem cls (of_code code))
    [
      "nullderef"; "nullpass"; "nullret"; "nullderive"; "globnull";
      "usedef"; "compdef"; "usereleased"; "escapefree"; "freeoffset";
      "freestatic"; "mustfree"; "onlytrans"; "branchstate"; "globstate";
      "compdestroy"; "refcount"; "realloclost";
    ]

(** Does any kept diagnostic in [reports] witness run-time class [cls]
    in file [file]? *)
let witnessed ~(file : string) ~(cls : string) (reports : Cfront.Diag.t list) =
  List.exists
    (fun (d : Cfront.Diag.t) ->
      d.Cfront.Diag.loc.Cfront.Loc.file = file
      && List.mem cls (of_code d.Cfront.Diag.code))
    reports
