(** The abstract store: dataflow values for every tracked reference,
    persistent so branches copy it freely, with the paper's Section 5
    merge rules at confluence points.

    Aliasing distinguishes two relations: SAME VALUE ([l] and [argl] hold
    the same pointer — object-state updates reach every such name) and
    SAME LOCATION ([l->next] and [argl->next] — an assignment rewrites a
    location and all its names, but never the other holders of the old
    value). *)

open State

type refstate = {
  rs_def : defstate;
  rs_null : nullstate;
  rs_alloc : allocstate;
  rs_offset : bool;  (** holds an offset (interior) pointer *)
  rs_aliases : Sref.Set.t;  (** recorded same-value edges *)
  rs_defloc : Cfront.Loc.t option;
  rs_nullloc : Cfront.Loc.t option;
  rs_allocloc : Cfront.Loc.t option;
}

val mk_refstate :
  ?aliases:Sref.Set.t -> ?offset:bool -> ?defloc:Cfront.Loc.t ->
  ?nullloc:Cfront.Loc.t -> ?allocloc:Cfront.Loc.t -> def:defstate ->
  null:nullstate -> alloc:allocstate -> unit -> refstate

val unknown_refstate : refstate
(** Default for untracked references: defined, untracked nullness,
    unmanaged. *)

type t

val empty : t
val find : t -> Sref.t -> refstate option
val mem : t -> Sref.t -> bool
val get : t -> Sref.t -> refstate
val set : t -> Sref.t -> refstate -> t
(** Bind (ticks the [store_ops] counter).  A write indistinguishable
    from the existing binding is elided — the store comes back
    physically unchanged and [store_ops_elided] ticks instead. *)

val remove : t -> Sref.t -> t
val update : t -> Sref.t -> (refstate -> refstate) -> t
val bindings : t -> (Sref.t * refstate) list

val unreachable : t -> t
(** Mark the path dead (after [return] or an [exits] call). *)

val is_reachable : t -> bool

val add_alias : t -> Sref.t -> Sref.t -> t
(** Record a (symmetric) same-value edge. *)

val aliases_of : t -> Sref.t -> Sref.Set.t

val value_images : t -> Sref.t -> Sref.Set.t
(** Locations that may hold the same pointer value (flat closure: recorded
    edges of the location's names; chains are materialized eagerly at
    assignment time). *)

val location_images : t -> Sref.t -> Sref.Set.t
(** Names denoting the same storage location. *)

val alias_images : t -> Sref.t -> Sref.Set.t
(** Alias of {!value_images}. *)

val update_images : t -> Sref.t -> (refstate -> refstate) -> t
(** Apply an object-state update to every same-value name. *)

val set_def : ?loc:Cfront.Loc.t -> t -> Sref.t -> defstate -> t
val set_null : ?loc:Cfront.Loc.t -> t -> Sref.t -> nullstate -> t
val set_alloc : ?loc:Cfront.Loc.t -> t -> Sref.t -> allocstate -> t

val refine_null : ?loc:Cfront.Loc.t -> t -> Sref.t -> nullstate -> t
(** Guard refinement: the tested reference and its same-value names. *)

val drop_root : t -> Sref.root -> t
(** Scope exit: drop every binding mentioning the root and prune dangling
    alias edges. *)

val refs_with_root : t -> Sref.root -> (Sref.t * refstate) list

(** A conflict discovered while merging two branches. *)
type conflict =
  | Cdef of Sref.t * refstate * refstate
      (** released on one path, live on the other *)
  | Calloc of Sref.t * refstate * refstate
      (** irreconcilable allocation states (kept vs only, Fig. 5/6) *)

val derived_def : t -> Sref.t -> other:defstate -> defstate
(** Implicit definition state of an untracked reference, derived from its
    nearest tracked ancestor ([other] is the opposing branch's state, used
    when the ancestor is definitely NULL). *)

val merge : on_conflict:(conflict -> unit) -> t -> t -> t
(** Merge two branch stores; conflicting references become error-marked so
    one anomaly does not cascade. *)

val refstate_equal : refstate -> refstate -> bool
(** Structural equality for fixpoint convergence: alias sets compare by
    contents (not physically), blame locations are ignored. *)

val equal : t -> t -> bool
(** Structural store equality ({!refstate_equal} pointwise plus
    reachability) — the [+loopexec] fixpoint's convergence test. *)

val widen : t -> t -> t
(** Widening join at a loop back edge: the {!merge} rules, silent, with
    anomalies resolved toward the more dangerous state (dead dominates,
    the stronger obligation survives) so the final reporting pass over
    the converged store sees them. *)

val collapse_deep : depth:int -> t -> t
(** Collapse bindings deeper than [depth] onto their depth-[depth]
    ancestor (joining with the widening rules) and rewrite alias sets
    through the cap, keeping the per-loop reference universe finite
    (e.g. under a [p = p->next] list walk). *)

val pp : Format.formatter -> t -> unit
