(** Storage references: "a variable or a location derived from a variable
    (e.g., a field of a structure)" (paper, Section 3).

    References are hash-consed per domain: the smart constructors
    ({!root}, {!field}, {!deref}, {!index}) return the unique physical
    representative of a term, every value carries a precomputed hash, an
    interning {!id}, and cached {!root_of}/{!depth}, and {!equal} is a
    pointer comparison in the common case.  Inspect structure with
    {!view}.  References must not be shared across domains (each domain
    interns its own; the parallel driver only exchanges rendered
    diagnostics). *)

type root =
  | Rlocal of string  (** local variable / a parameter's local copy *)
  | Rparam of int * string  (** the externally visible parameter (argl) *)
  | Rglobal of string
  | Rret
  | Rfresh of int * string  (** allocation site id + allocating function *)
  | Rstatic of int  (** string literal or other static object *)

type t
(** A hash-consed reference.  Abstract: build with the smart
    constructors, destruct with {!view}/{!base}. *)

(** One structural layer.  The children are themselves interned [t]s. *)
type node =
  | Root of root
  | Field of t * string  (** pointer member access normalizes here *)
  | Deref of t
  | Index of t * int option  (** [None] conflates unknown indexes *)

val root : root -> t
val field : t -> string -> t
val deref : t -> t
val index : t -> int option -> t

val view : t -> node
(** The outermost constructor. *)

val id : t -> int
(** Dense per-domain interning id (first-intern order).  Stable within a
    run of one procedure, but NOT across domains — never let it reach
    output. *)

val hash : t -> int
(** Precomputed structural hash (interning-history independent). *)

val equal_root : root -> root -> bool
val compare_root : root -> root -> int
val pp_root : Format.formatter -> root -> unit
val show_root : root -> string

val equal : t -> t -> bool
(** [(==)] plus a hash test in the common (same-domain) case. *)

val compare : t -> t -> int
(** Structural order (constructor rank, then lexicographic) — identical
    to the pre-interning order and independent of interning history, so
    map/set iteration is deterministic under [-j].  Shared subterms
    short-circuit physically. *)

val pp : Format.formatter -> t -> unit
val show : t -> string

val root_of : t -> root
(** Cached; O(1). *)

val base : t -> t option
(** One derivation step up, if any. *)

val depth : t -> int
(** Cached; O(1). *)

val ancestor_at_depth : t -> int -> t
(** [ancestor_at_depth r k] is the ancestor of [r] at derivation depth at
    most [k] ([r] itself when already shallow enough).  The [+loopexec]
    widening uses it to collapse unboundedly growing derivation chains
    (e.g. a [p = p->next] list walk) onto finitely many representatives. *)

val derived_from : outer:t -> t -> bool
(** Is the reference a proper derivation of [outer]?  Bounded by the
    cached depths. *)

val subst : from_:t -> to_:t -> t -> t
(** Rewrite occurrences of [from_] inside a reference (alias images).
    Returns the argument physically unchanged when nothing matches. *)

val mentions_root : root -> t -> bool
(** O(1): compares the cached root. *)

val to_string : t -> string
(** Source-like rendering ([p->f], [*p], [a[3]]). *)

val is_external : t -> bool
(** Visible in the caller's environment (not rooted at a local). *)

module Set : sig
  include Set.S with type elt = t

  val pp : Format.formatter -> t -> unit
end

module Map : Map.S with type key = t
