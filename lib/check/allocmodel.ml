(** The allocator-family model ([+allocmodel]).

    The paper describes [malloc]/[free] entirely through [only]/[null]
    annotations ("There is nothing special about malloc and free").  That
    uniformity has a blind spot: [realloc]'s [only] parameter is consumed
    on every path, so on the failure path — where the old block is still
    allocated — the checker believes the storage is already released.
    [p = realloc(p, n)] then silently loses the last reference to the old
    block, and the correct [tmp = realloc(p, n)] idiom is punished with a
    dead-storage false positive when the old pointer is freed on the
    failure branch.

    This table names the allocator family so the checker can give those
    calls path-sensitive semantics when [+allocmodel] is set:

    - [Alloc]: a fresh block; [zeroed] records whether its contents are
      defined on return ([calloc]) or merely allocated ([malloc],
      [aligned_alloc] — alignment does not affect the abstract state, but
      classifying the call keeps the definedness bookkeeping uniform even
      when a local redeclaration drops the [out] annotation).
    - [Realloc]: resizes the block named by its first pointer argument.
      On the non-null result branch the old reference really is released;
      on the null branch it is still allocated and must be resurrected. *)

type family =
  | Alloc of { zeroed : bool }
      (** malloc-like: returns a fresh block, contents defined iff
          [zeroed] *)
  | Realloc
      (** realloc-like: consumes its first pointer argument only when the
          result is non-null *)

(** Classify a standard allocator by name.  Returns [None] for everything
    outside the modeled family (including [free], whose semantics the
    annotations already capture exactly). *)
let classify = function
  | "malloc" -> Some (Alloc { zeroed = false })
  | "calloc" -> Some (Alloc { zeroed = true })
  | "aligned_alloc" -> Some (Alloc { zeroed = false })
  | "realloc" | "reallocarray" -> Some Realloc
  | _ -> None

let is_realloc name = classify name = Some Realloc

(** The result's definition state under the model, when the call is a
    modeled fresh allocation; [None] leaves the annotation-derived state
    untouched (realloc preserves the old contents, so its annotations are
    already right). *)
let result_def name =
  match classify name with
  | Some (Alloc { zeroed = true }) -> Some State.DSdefined
  | Some (Alloc { zeroed = false }) -> Some State.DSallocated
  | Some Realloc | None -> None
