(** Top-level checking API.

    [run ~file src] performs the whole pipeline the paper describes: parse
    (annotations included), extract interfaces, check every function body
    against the interface annotations, then apply stylized-comment
    suppression.  Diagnostics come back in source order. *)

module State = State
module Sref = Sref
module Store = Store
module Checker = Checker
module Suppress = Suppress
module Libspec = Libspec
module Errclass = Errclass

open Cfront
module Flags = Annot.Flags

type result = {
  program : Sema.program;
  reports : Diag.t list;  (** kept diagnostics, in source order *)
  suppressed : Diag.t list;  (** diagnostics silenced by stylized comments *)
}

let report_count r = List.length r.reports
let by_code r code = List.filter (fun (d : Diag.t) -> d.Diag.code = code) r.reports

(** Check a parsed translation unit.  [into] lets callers pre-load
    interface libraries (see {!Libspec}) so the unit is checked modularly. *)
let run_tunit ?(flags = Flags.default) ?into (tu : Ast.tunit) : result =
  let program = Sema.analyze ~flags ?into tu in
  Checker.check_program program;
  let table, errs = Suppress.of_pragmas program.Sema.p_pragmas in
  List.iter (Diag.Collector.emit program.Sema.diags) errs;
  let all = Diag.Collector.sorted program.Sema.diags in
  let kept, suppressed = Suppress.filter table all in
  { program; reports = kept; suppressed }

(** Parse and check a source string. *)
let run ?(flags = Flags.default) ?into ~file (src : string) : result =
  let typedefs =
    match into with
    | Some p -> Hashtbl.fold (fun k _ acc -> k :: acc) p.Sema.p_typedefs []
    | None -> []
  in
  let tu = Parser.parse_string ~typedefs ~file src in
  run_tunit ~flags ?into tu

(** Render diagnostics the way LCLint prints them. *)
let render_reports (r : result) : string =
  String.concat "\n" (List.map Diag.to_string r.reports)

(** One-line-per-message view (primary lines only), useful in tests. *)
let summaries (r : result) : string list =
  List.map
    (fun (d : Diag.t) -> Fmt.str "%a: %s" Loc.pp d.Diag.loc d.Diag.text)
    r.reports

let codes (r : result) : string list =
  List.map (fun (d : Diag.t) -> d.Diag.code) r.reports
