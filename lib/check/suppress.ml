(** Message suppression via stylized comments.

    "Since spurious messages can be suppressed locally by placing stylized
    comments around the code that produces the message, this unsoundness
    has rarely been a serious problem in practice" (Section 2).  Section 7
    reports 75 suppression sites in LCLint's own source.

    Two forms are supported:
    - [/*@i@*/] suppresses all messages on the same source line;
    - [/*@ignore@*/] ... [/*@end@*/] suppresses all messages in the
      enclosed region of the same file. *)

open Cfront

type region = { r_file : string; r_from : int; r_to : int }

type t = {
  lines : (string * int) list;  (** (file, line) suppressed *)
  regions : region list;
}

let empty = { lines = []; regions = [] }

(** Build the suppression table from the free-standing annotation comments
    collected by the parser.  Unmatched [ignore]/[end] pairs are reported
    via the returned diagnostics. *)
let of_pragmas (pragmas : Ast.annot list) : t * Diag.t list =
  let errs = ref [] in
  let lines = ref [] in
  let regions = ref [] in
  let open_regions = ref [] in
  List.iter
    (fun (a : Ast.annot) ->
      match String.trim a.a_text with
      | "i" -> lines := (a.a_loc.Loc.file, a.a_loc.Loc.line) :: !lines
      | "ignore" -> open_regions := a.a_loc :: !open_regions
      | "end" -> (
          match !open_regions with
          | start :: rest ->
              open_regions := rest;
              regions :=
                {
                  r_file = start.Loc.file;
                  r_from = start.Loc.line;
                  r_to = a.a_loc.Loc.line;
                }
                :: !regions
          | [] ->
              errs :=
                Diag.make ~loc:a.a_loc ~code:"suppress"
                  "end comment without a matching ignore"
                :: !errs)
      | _ -> ())
    pragmas;
  List.iter
    (fun loc ->
      errs :=
        Diag.make ~loc ~code:"suppress" "unclosed ignore comment" :: !errs)
    !open_regions;
  ({ lines = !lines; regions = !regions }, List.rev !errs)

let suppresses (t : t) (loc : Loc.t) : bool =
  List.mem (loc.Loc.file, loc.Loc.line) t.lines
  || List.exists
       (fun r ->
         r.r_file = loc.Loc.file && loc.Loc.line >= r.r_from
         && loc.Loc.line <= r.r_to)
       t.regions

(** Partition diagnostics into (kept, suppressed).  Suppressed messages
    are counted under the [suppressed_total] telemetry counter so they
    appear in [-stats] instead of vanishing from the summary. *)
let filter (t : t) (diags : Diag.t list) : Diag.t list * Diag.t list =
  let kept, suppressed =
    List.partition (fun (d : Diag.t) -> not (suppresses t d.Diag.loc)) diags
  in
  Telemetry.Counter.add Telemetry.c_suppressed (List.length suppressed);
  (kept, suppressed)
