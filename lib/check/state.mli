(** Dataflow values of the storage model (paper, Sections 3 and 5): every
    reference carries a definition state, a null state and an allocation
    state, merged at confluence points with the paper's rules. *)

type defstate =
  | DSundefined
  | DSallocated  (** points to allocated storage with undefined contents *)
  | DSpdefined  (** partially defined *)
  | DSdefined  (** completely defined *)
  | DSdead  (** released or transferred; may not be used *)
  | DSerror  (** post-report marker to stop cascades *)

type nullstate =
  | NSnull
  | NSpossnull
  | NSnotnull
  | NSrel  (** relnull *)
  | NSuntracked

type allocstate =
  | ASonly
  | ASowned
  | ASdependent
  | ASshared
  | AStemp
  | ASkept  (** obligation satisfied; still usable *)
  | ASobserver
  | ASexposed
  | ASrefcounted  (** live reference to reference-counted storage *)
  | ASstack
  | ASstatic
  | ASnone
  | ASerror

val equal_defstate : defstate -> defstate -> bool
val compare_defstate : defstate -> defstate -> int
val pp_defstate : Format.formatter -> defstate -> unit
val show_defstate : defstate -> string
val equal_nullstate : nullstate -> nullstate -> bool
val compare_nullstate : nullstate -> nullstate -> int
val pp_nullstate : Format.formatter -> nullstate -> unit
val show_nullstate : nullstate -> string
val equal_allocstate : allocstate -> allocstate -> bool
val compare_allocstate : allocstate -> allocstate -> int
val pp_allocstate : Format.formatter -> allocstate -> unit
val show_allocstate : allocstate -> string

val defstate_string : defstate -> string
val nullstate_string : nullstate -> string
val allocstate_string : allocstate -> string

val merge_def : defstate -> defstate -> defstate
(** "Definition states are combined using the weakest assumption." *)

val def_conflict : defstate -> defstate -> bool
(** Dead on exactly one side — the "deallocated on only one path"
    anomaly (the store merge decides whether context excuses it). *)

val merge_null : nullstate -> nullstate -> nullstate

val merge_alloc : allocstate -> allocstate -> (allocstate, allocstate * allocstate) result
(** [Error] when the states cannot be sensibly combined (e.g. kept vs
    only, Figure 5/6). *)

val widen_def : defstate -> defstate -> defstate
(** Definition-state join for the [+loopexec] fixpoint: {!merge_def}
    (dead dominates) with the [DSerror] marker transparent, so silenced
    iterations cannot mask the converged state. *)

val widen_alloc : allocstate -> allocstate -> allocstate
(** Allocation-state join for the [+loopexec] fixpoint: {!merge_alloc}
    when consistent, otherwise the side with the stronger outstanding
    obligation.  Total and commutative. *)

val has_obligation : allocstate -> bool
(** Does the state carry an obligation to release/consume? *)

val can_transfer_obligation : allocstate -> bool
(** May storage in this state be passed where an obligation is required? *)

val releasable : allocstate -> bool
