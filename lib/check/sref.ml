(** Storage references.

    A reference is "a variable or a location derived from a variable (e.g.,
    a field of a structure)" (paper, Section 3).  The checker tracks
    dataflow values per reference.  External references — those visible to
    the caller — are rooted at parameters, globals, the function result, or
    allocation sites whose storage escapes.

    References are hash-consed: {!root}, {!field}, {!deref} and {!index}
    return the unique physical representative of a term, so within one
    domain structural equality coincides with [(==)], and every value
    carries a precomputed hash, an interning id, its root and its depth.
    The intern table is domain-local ({!Domain.DLS}): references are
    created, stored and compared inside the per-procedure checker, which
    never shares them across domains (the parallel driver exchanges only
    rendered diagnostics).  {!compare} preserves the pre-interning
    structural order — NOT interning-id order, which would depend on how
    many procedures a domain happened to check earlier — so store
    iteration, and therefore diagnostic text, is identical no matter how
    work is partitioned across domains. *)

type root =
  | Rlocal of string  (** local variable, or the local copy of a parameter *)
  | Rparam of int * string
      (** the externally visible parameter [argi] (paper, Section 5:
          "we use l to refer to the local variable and argl to refer to the
          externally visible parameter"); the string is the source name,
          kept for messages *)
  | Rglobal of string
  | Rret  (** the function result *)
  | Rfresh of int * string
      (** storage allocated during this function, by site id; the string
          names the allocating function for messages *)
  | Rstatic of int  (** a string literal or other static object *)
[@@deriving eq, ord, show]

type t = {
  sr_id : int;  (** dense per-domain interning id, first-intern order *)
  sr_hash : int;  (** precomputed structural hash *)
  sr_node : node;
  sr_root : root;  (** cached [root_of] *)
  sr_depth : int;  (** cached derivation depth *)
  mutable sr_deref : t option;  (** memoized [deref] of this node *)
  mutable sr_fields : (string * t) list;  (** memoized [field]s *)
  mutable sr_indexes : (int option * t) list;  (** memoized [index]es *)
}

and node =
  | Root of root
  | Field of t * string  (** [r.f], or [r->f] via [Field (Deref r, f)] *)
  | Deref of t  (** [*r] *)
  | Index of t * int option
      (** [r[i]]: [Some i] for a compile-time-known index, [None] for an
          unknown index (conflated per the paper's simplifying assumption,
          Section 2) *)

let view r = r.sr_node
let id r = r.sr_id
let hash r = r.sr_hash
let root_of r = r.sr_root
let depth r = r.sr_depth

(* ------------------------------------------------------------------ *)
(* Interning                                                           *)
(* ------------------------------------------------------------------ *)

(* Only roots go through a table; a derived reference is memoized on its
   (unique) base node, so the hot construction path — rebuilding [l->next]
   for the thousandth time inside a loop — is a pointer chase through a
   one-or-two-entry list, with no hashing and no allocation.  The memo
   lists stay tiny because a struct has few fields and a node has one
   deref.  Mutating them is safe: spines never leave the domain that
   interned their root. *)
type intern_state = { roots : (root, t) Hashtbl.t; mutable next_id : int }

let intern_key : intern_state Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { roots = Hashtbl.create 64; next_id = 0 })

(* FNV-style mixing, masked to stay a positive tagged int. *)
let mix h x = (((h * 0x01000193) lxor x) land 0x3FFFFFFF : int)

let fresh node root depth hash =
  let st = Domain.DLS.get intern_key in
  let r =
    { sr_id = st.next_id; sr_hash = hash; sr_node = node; sr_root = root;
      sr_depth = depth; sr_deref = None; sr_fields = []; sr_indexes = [] }
  in
  st.next_id <- st.next_id + 1;
  Telemetry.Counter.tick Telemetry.c_srefs_interned;
  r

let root rt =
  let st = Domain.DLS.get intern_key in
  match Hashtbl.find_opt st.roots rt with
  | Some r -> r
  | None ->
      let r = fresh (Root rt) rt 0 (mix 1 (Hashtbl.hash rt)) in
      Hashtbl.add st.roots rt r;
      r

let rec assoc_field f = function
  | [] -> None
  | (g, t) :: rest -> if String.equal f g then Some t else assoc_field f rest

let field b f =
  match assoc_field f b.sr_fields with
  | Some t -> t
  | None ->
      let t =
        fresh (Field (b, f)) b.sr_root (b.sr_depth + 1)
          (mix (mix 2 b.sr_hash) (Hashtbl.hash f))
      in
      b.sr_fields <- (f, t) :: b.sr_fields;
      t

let deref b =
  match b.sr_deref with
  | Some t -> t
  | None ->
      let t = fresh (Deref b) b.sr_root (b.sr_depth + 1) (mix 3 b.sr_hash) in
      b.sr_deref <- Some t;
      t

let rec assoc_index i = function
  | [] -> None
  | (j, t) :: rest ->
      if Option.equal Int.equal i j then Some t else assoc_index i rest

let index b i =
  match assoc_index i b.sr_indexes with
  | Some t -> t
  | None ->
      let t =
        fresh (Index (b, i)) b.sr_root (b.sr_depth + 1)
          (mix (mix 4 b.sr_hash) (Hashtbl.hash i))
      in
      b.sr_indexes <- (i, t) :: b.sr_indexes;
      t

(* ------------------------------------------------------------------ *)
(* Equality and order                                                  *)
(* ------------------------------------------------------------------ *)

(* Same-domain values are physically unique, so [==] (or a hash mismatch)
   decides almost every call; the structural fallback only runs on a hash
   collision, or for values interned by different domains. *)
let rec equal a b =
  a == b
  || a.sr_hash = b.sr_hash
     &&
     match (a.sr_node, b.sr_node) with
     | Root ra, Root rb -> equal_root ra rb
     | Field (ba, fa), Field (bb, fb) -> String.equal fa fb && equal ba bb
     | Deref ba, Deref bb -> equal ba bb
     | Index (ba, ia), Index (bb, ib) ->
         Option.equal Int.equal ia ib && equal ba bb
     | _, _ -> false

let node_rank = function
  | Root _ -> 0
  | Field _ -> 1
  | Deref _ -> 2
  | Index _ -> 3

(* Deliberately the OLD structural order (constructor rank, then
   lexicographic), not id order: ids depend on interning history, which
   differs between domains, while this order depends only on the term.
   Shared subterms short-circuit through [==], so in practice a compare
   touches one spine node. *)
let rec compare a b =
  if a == b then 0
  else
    match (a.sr_node, b.sr_node) with
    | Root ra, Root rb -> compare_root ra rb
    | Field (ba, fa), Field (bb, fb) ->
        let c = compare ba bb in
        if c <> 0 then c else String.compare fa fb
    | Deref ba, Deref bb -> compare ba bb
    | Index (ba, ia), Index (bb, ib) ->
        let c = compare ba bb in
        if c <> 0 then c else Option.compare Int.compare ia ib
    | na, nb -> Int.compare (node_rank na) (node_rank nb)

(* ------------------------------------------------------------------ *)
(* Derivation structure                                                *)
(* ------------------------------------------------------------------ *)

(** The base reference one derivation step up, if any. *)
let base r =
  match r.sr_node with
  | Root _ -> None
  | Field (b, _) | Deref b | Index (b, _) -> Some b

(** The ancestor of [r] at derivation depth at most [k] (the reference
    itself when it is already shallow enough).  Used by the [+loopexec]
    widening to collapse unboundedly growing derivation chains — e.g. the
    [p = p->next] list walk — onto a finite set of representatives. *)
let ancestor_at_depth r k =
  let k = if k < 0 then 0 else k in
  let rec up r =
    if r.sr_depth <= k then r
    else match base r with None -> r | Some b -> up b
  in
  up r

(** Is [inner] a proper derivation of [outer] (reachable from it)?  The
    cached depths bound the walk: once we are no deeper than [outer] no
    base can match. *)
let derived_from ~outer inner =
  let rec up r =
    if r.sr_depth <= outer.sr_depth then false
    else
      match base r with
      | None -> false
      | Some b -> equal b outer || up b
  in
  (not (equal inner outer)) && up inner

(** Substitute reference [from_] by [to_] inside [r] (used to map a
    reference through an alias: if [l] aliases [argl], the alias image of
    [l->next] is [argl->next]).  Untouched spines come back physically
    unchanged, so downstream [Set.map]s preserve sharing. *)
let rec subst ~from_ ~to_ r =
  if equal r from_ then to_
  else
    match r.sr_node with
    | Root _ -> r
    | Field (b, f) ->
        let b' = subst ~from_ ~to_ b in
        if b' == b then r else field b' f
    | Deref b ->
        let b' = subst ~from_ ~to_ b in
        if b' == b then r else deref b'
    | Index (b, i) ->
        let b' = subst ~from_ ~to_ b in
        if b' == b then r else index b' i

(** Does the reference mention the given root?  Roots only occur at the
    leaf, so this is the cached root. *)
let mentions_root rt r = equal_root r.sr_root rt

(** Source-like rendering for messages: [deref p] prints as [*p],
    [field p f] as [p->f]; a field of an explicit dereference renders
    with the star parenthesized. *)
let rec to_string r =
  match r.sr_node with
  | Root (Rlocal n) -> n
  | Root (Rparam (_, n)) -> n
  | Root (Rglobal n) -> n
  | Root Rret -> "<result>"
  | Root (Rfresh (_, fn)) -> Printf.sprintf "<fresh storage from %s>" fn
  | Root (Rstatic _) -> "<static storage>"
  | Field ({ sr_node = Deref b; _ }, f) ->
      Printf.sprintf "(*%s).%s" (to_string b) f
  | Field (b, f) ->
      (* pointer member access is normalized to [field p f], so the
         arrow form is the accurate rendering in practice *)
      Printf.sprintf "%s->%s" (to_string b) f
  | Deref b -> Printf.sprintf "*%s" (to_string b)
  | Index (b, Some i) -> Printf.sprintf "%s[%d]" (to_string b) i
  | Index (b, None) -> Printf.sprintf "%s[]" (to_string b)

(** Is this a reference visible in the caller's environment?  Locals are
    internal; parameters (the [arg] views), globals, result and escaped
    fresh objects are external. *)
let is_external r =
  match r.sr_root with
  | Rlocal _ -> false
  | Rparam _ | Rglobal _ | Rret | Rfresh _ | Rstatic _ -> true

let pp ppf r = Format.pp_print_string ppf (to_string r)
let show = to_string

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = struct
  include Stdlib.Set.Make (Ord)

  let pp ppf s =
    Fmt.pf ppf "{%a}" (Fmt.list ~sep:(Fmt.any ", ") Fmt.string)
      (List.map to_string (elements s))
end

module Map = Stdlib.Map.Make (Ord)
