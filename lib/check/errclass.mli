(** Static half of the differential oracle's error-class mapping:
    which static diagnostic codes witness which run-time error classes
    (the vocabulary of [Rtcheck.Heap.error_class]). *)

val all_classes : string list
(** Every run-time error class, including the two leak classes and the
    classes with no static witness (["bounds"], ["bad-arg"]). *)

val of_code : string -> string list
(** The run-time classes a kept diagnostic with this code witnesses
    (empty for codes with no run-time counterpart). *)

val codes_for : string -> string list
(** The static codes that can witness a run-time class. *)

val witnessed : file:string -> cls:string -> Cfront.Diag.t list -> bool
(** Does any diagnostic in the list witness class [cls] in [file]? *)
