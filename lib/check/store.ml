(** The abstract store: dataflow values for every tracked reference.

    Persistent (branches copy it freely), with the merge rules of Section 5
    at confluence points.  The store is type-free: the checker supplies
    type-driven behaviour (field enumeration, completion checking) on top.

    Alias tracking follows the paper: each reference carries a may-alias
    set; updates made through one reference are applied to its *alias
    images* — e.g. with [l] aliasing [argl], an update of [l->next] also
    updates [argl->next] ("Since l->next may alias argl->next, the state of
    argl->next is also allocated, non-null, and only", Section 5). *)

open State

type refstate = {
  rs_def : defstate;
  rs_null : nullstate;
  rs_alloc : allocstate;
  rs_offset : bool;
      (** the reference holds an offset (interior) pointer — the result of
          pointer arithmetic; such storage cannot be released through this
          reference (Section 3) *)
  rs_aliases : Sref.Set.t;
  rs_defloc : Cfront.Loc.t option;  (** where the def state was set *)
  rs_nullloc : Cfront.Loc.t option;  (** where the null state was set *)
  rs_allocloc : Cfront.Loc.t option;  (** where the alloc state was set *)
}

let mk_refstate ?(aliases = Sref.Set.empty) ?(offset = false) ?defloc ?nullloc
    ?allocloc ~def ~null ~alloc () =
  {
    rs_def = def;
    rs_null = null;
    rs_alloc = alloc;
    rs_offset = offset;
    rs_aliases = aliases;
    rs_defloc = defloc;
    rs_nullloc = nullloc;
    rs_allocloc = allocloc;
  }

(** Default state for a reference the store knows nothing about:
    completely defined, untracked nullness, unmanaged. *)
let unknown_refstate =
  mk_refstate ~def:DSdefined ~null:NSuntracked ~alloc:ASnone ()

type t = {
  map : refstate Sref.Map.t;
  reachable : bool;
      (** false after a [return] or a call to an [exits] function *)
}

let empty = { map = Sref.Map.empty; reachable = true }
let find st r = Sref.Map.find_opt r st.map
let mem st r = Sref.Map.mem r st.map
let get st r = match find st r with Some s -> s | None -> unknown_refstate

(* Would writing [b] over the existing binding [a] change anything an
   observer can see?  Alias sets are compared physically: [Set.add] /
   [Set.remove] return their argument unchanged on a no-op, so the
   no-change case is physical equality in practice.  Location options are
   small immutable records, compared structurally. *)
(* location options flow through [{ old with ... }] copies untouched, so
   the same-value case is physical equality in practice; the structural
   fallback only fires when a fresh but identical loc was attached *)
let same_loc a b =
  a == b || match (a, b) with Some la, Some lb -> la == lb || la = lb | _ -> false

let refstate_same (a : refstate) (b : refstate) =
  a == b
  || equal_defstate a.rs_def b.rs_def
     && equal_nullstate a.rs_null b.rs_null
     && equal_allocstate a.rs_alloc b.rs_alloc
     && Bool.equal a.rs_offset b.rs_offset
     && a.rs_aliases == b.rs_aliases
     && same_loc a.rs_defloc b.rs_defloc
     && same_loc a.rs_nullloc b.rs_nullloc
     && same_loc a.rs_allocloc b.rs_allocloc

(* every store rewrite ticks the [store_ops] telemetry counter: the
   paper's complexity claim is that checking is linear in store traffic,
   so this is the number optimisation PRs watch.  Writes that cannot
   change the store (same state already bound) are elided — no tree
   rebuild — and tick [store_ops_elided] instead. *)
let set st r s =
  (* single tree traversal: [update] both reads the old binding and
     writes the new one; returning the old refstate on a no-op makes
     [update] hand back the map physically unchanged *)
  let map =
    Sref.Map.update r
      (function Some old when refstate_same old s -> Some old | _ -> Some s)
      st.map
  in
  if map == st.map then begin
    Telemetry.Counter.tick Telemetry.c_store_ops_elided;
    st
  end
  else begin
    Telemetry.Counter.tick Telemetry.c_store_ops;
    { st with map }
  end

let remove st r =
  (* [Map.remove] returns its argument physically when [r] is unbound *)
  let map = Sref.Map.remove r st.map in
  if map == st.map then begin
    Telemetry.Counter.tick Telemetry.c_store_ops_elided;
    st
  end
  else begin
    Telemetry.Counter.tick Telemetry.c_store_ops;
    { st with map }
  end
let unreachable st = { st with reachable = false }
let is_reachable st = st.reachable
let bindings st = Sref.Map.bindings st.map

let update st r f =
  let s = get st r in
  set st r (f s)

(* ------------------------------------------------------------------ *)
(* Aliases                                                             *)
(* ------------------------------------------------------------------ *)

(** Record that [a] and [b] may denote the same storage (symmetric). *)
let add_alias st a b =
  if Sref.equal a b then st
  else
    let st = update st a (fun s -> { s with rs_aliases = Sref.Set.add b s.rs_aliases }) in
    update st b (fun s -> { s with rs_aliases = Sref.Set.add a s.rs_aliases })

let aliases_of st r = (get st r).rs_aliases

(* Aliasing distinguishes two relations:

   - SAME VALUE: [l] and [argl] hold the same pointer (an edge recorded by
     {!add_alias}).  State changes to the pointed-to OBJECT (releasing it,
     satisfying its obligation, null knowledge) apply to every same-value
     name.

   - SAME LOCATION: [l->next] and [argl->next] are the same piece of
     storage whenever [l] and [argl] hold the same value.  An assignment
     rewrites a location, so it applies to every same-location name — but
     NOT to other same-value names of the old contents (assigning to [l]
     does not change [argl]).

   [value_images] computes the same-value closure: recorded edges, plus
   same-location renamings (two names for one location necessarily hold
   the same value).  [location_images] rewrites the base of a derived
   reference through the base's value images; for a root it is just the
   root itself. *)

(* The closure is deliberately FLAT (one step through recorded edges):
   transitive composition would combine facts from different paths into
   nonsense like "l aliases l->next" after a loop (the paper notes only
   argl and argl->next are detected as aliases of l).  Chains like
   q = p; r = q still resolve because each assignment materializes direct
   edges eagerly using the previous flat closure. *)

(** Names denoting the same storage location as [r]: rewrite each base
    segment through the values it may share. *)
let rec location_images st r : Sref.Set.t =
  let rewrite b mk =
    Sref.Set.fold
      (fun b' acc -> Sref.Set.add (mk b') acc)
      (value_images_at st b) Sref.Set.empty
  in
  match Sref.view r with
  | Sref.Root _ -> Sref.Set.singleton r
  | Sref.Field (b, f) -> rewrite b (fun b' -> Sref.field b' f)
  | Sref.Deref b -> rewrite b (fun b' -> Sref.deref b')
  | Sref.Index (b, i) -> rewrite b (fun b' -> Sref.index b' i)

(** Locations that may hold the same pointer value as [r]: [r]'s location
    names plus their recorded direct edges. *)
and value_images_at st r : Sref.Set.t =
  let locs = location_images st r in
  Sref.Set.fold
    (fun l acc -> Sref.Set.union (aliases_of st l) acc)
    locs locs

let value_images = value_images_at

(** Backwards-compatible name: the same-value closure. *)
let alias_images = value_images

(** Apply [f] to [r] and every same-value name (object-state updates).
    A root with no recorded edges is its own only image — the common
    case, worth skipping the closure computation for. *)
let update_images st r f =
  match Sref.view r with
  | Sref.Root _ when Sref.Set.is_empty (aliases_of st r) -> update st r f
  | _ -> Sref.Set.fold (fun r' st -> update st r' f) (value_images st r) st

let set_def ?loc st r d =
  update_images st r (fun s -> { s with rs_def = d; rs_defloc = loc })

let set_null ?loc st r n =
  update_images st r (fun s -> { s with rs_null = n; rs_nullloc = loc })

(** Null-state refinement from a guard.  Applied to the tested reference
    and its same-value names: a test on [l] also tells us about [argl]
    (the paper's point 3 — "at point 3 we know that l is null" — feeds the
    exit check of the externally visible parameter).  This is a
    likely-case assumption for genuinely may-valued aliases, in the
    paper's spirit (Section 2). *)
let refine_null ?loc st r n =
  update_images st r (fun s -> { s with rs_null = n; rs_nullloc = loc })

let set_alloc ?loc st r a =
  update_images st r (fun s -> { s with rs_alloc = a; rs_allocloc = loc })

(** Drop every binding whose reference involves [root] (scope exit), and
    remove dangling alias edges pointing into the dropped set. *)
let drop_root st root =
  let keep, dropped =
    Sref.Map.partition (fun r _ -> not (Sref.mentions_root root r)) st.map
  in
  let dropped_refs =
    Sref.Map.fold (fun r _ acc -> Sref.Set.add r acc) dropped Sref.Set.empty
  in
  let keep =
    Sref.Map.map
      (fun s -> { s with rs_aliases = Sref.Set.diff s.rs_aliases dropped_refs })
      keep
  in
  { st with map = keep }

(** References rooted at [root] currently tracked. *)
let refs_with_root st root =
  Sref.Map.fold
    (fun r s acc -> if Sref.mentions_root root r then (r, s) :: acc else acc)
    st.map []

(* ------------------------------------------------------------------ *)
(* Confluence                                                          *)
(* ------------------------------------------------------------------ *)

(** A conflict discovered while merging two branches. *)
type conflict =
  | Cdef of Sref.t * refstate * refstate
      (** dead on one path, live on the other *)
  | Calloc of Sref.t * refstate * refstate
      (** irreconcilable allocation states (e.g. kept vs only) *)

(** Derive the implicit definition state of an untracked reference from
    its nearest tracked ancestor: children of [allocated] storage are
    undefined; children of [defined] storage are defined.  When the
    ancestor is definitely NULL the reference does not exist on this path
    at all, so the other branch's state [other] stands (the paper keeps
    [argl->next->next] undefined at point 10 of Fig. 6 although the false
    branch never reaches it). *)
let derived_def st r ~(other : defstate) : defstate =
  let rec nearest r =
    match Sref.base r with
    | None -> None
    | Some b -> ( match find st b with Some s -> Some s | None -> nearest b)
  in
  match nearest r with
  | Some { rs_null = NSnull; _ } -> other
  | Some { rs_def = DSallocated; _ } -> DSundefined
  | Some { rs_def = DSundefined; _ } -> DSundefined
  | Some { rs_def = DSdead; _ } -> DSdead
  | _ -> DSdefined

(** Merge two stores at a confluence point.  [on_conflict] is called for
    each anomaly; the merged state for a conflicting reference is the error
    marker, so one anomaly does not cascade. *)
let merge ~(on_conflict : conflict -> unit) (a : t) (b : t) : t =
  match (a.reachable, b.reachable) with
  | false, false -> { a with reachable = false }
  | false, true -> b
  | true, false -> a
  | true, true when a.map == b.map ->
      (* common for an [if] without [else] whose branch left the store
         untouched: nothing to reconcile *)
      a
  | true, true ->
      let merge_one r (sa : refstate option) (sb : refstate option) :
          refstate option =
        match (sa, sb) with
        | Some xa, Some xb when xa == xb ->
            (* branches that did not touch this reference share its
               refstate physically; merging it with itself is the
               identity (same def/null/alloc, union of equal alias
               sets) and can raise no conflict *)
            sa
        | _ ->
        let other_def = function
          | Some (x : refstate) -> x.rs_def
          | None -> DSdefined
        in
        let fill st s other = function
          | Some x -> x
          | None ->
              { unknown_refstate with rs_def = derived_def st s ~other }
        in
        let xa = fill a r (other_def sb) sa
        and xb = fill b r (other_def sa) sb in
        (* A dead-on-one-path merge is consistent when the live path
           carries no release obligation either: the pointer is NULL
           (freeing null is a no-op) or its obligation was satisfied
           (kept).  The guarded-free idiom [if (p != NULL) free(p);] and
           transfer-or-release patterns rely on this. *)
        let relaxed (x : refstate) =
          equal_nullstate x.rs_null NSnull
          || equal_allocstate x.rs_alloc ASkept
        in
        let dead_ok =
          (equal_defstate xa.rs_def DSdead && relaxed xb)
          || (equal_defstate xb.rs_def DSdead && relaxed xa)
        in
        let def =
          if def_conflict xa.rs_def xb.rs_def && not dead_ok then (
            on_conflict (Cdef (r, xa, xb));
            DSerror)
          else merge_def xa.rs_def xb.rs_def
        in
        let alloc =
          (* once the storage is dead on some path (or was reported), the
             allocation-state combination carries no new information; the
             choices below are symmetric in the two branches, so merge
             commutes (a property test pins this down) *)
          if equal_defstate def DSerror then ASerror
          else if equal_defstate xa.rs_def DSdead then
            if equal_defstate xb.rs_def DSdead then
              if equal_allocstate xa.rs_alloc xb.rs_alloc then xa.rs_alloc
              else ASerror
            else xb.rs_alloc
          else if equal_defstate xb.rs_def DSdead then xa.rs_alloc
          else
            match merge_alloc xa.rs_alloc xb.rs_alloc with
            | Ok al -> al
            | Error _ ->
                on_conflict (Calloc (r, xa, xb));
                ASerror
        in
        Some
          {
            rs_def = def;
            rs_null = merge_null xa.rs_null xb.rs_null;
            rs_alloc = alloc;
            rs_offset = xa.rs_offset || xb.rs_offset;
            rs_aliases =
              (if xa.rs_aliases == xb.rs_aliases then xa.rs_aliases
               else Sref.Set.union xa.rs_aliases xb.rs_aliases);
            rs_defloc = (if xa.rs_defloc <> None then xa.rs_defloc else xb.rs_defloc);
            rs_nullloc =
              (if equal_nullstate xa.rs_null xb.rs_null then xa.rs_nullloc
               else if
                 equal_nullstate (merge_null xa.rs_null xb.rs_null) xa.rs_null
               then xa.rs_nullloc
               else xb.rs_nullloc);
            rs_allocloc =
              (if xa.rs_allocloc <> None then xa.rs_allocloc else xb.rs_allocloc);
          }
      in
      let map = Sref.Map.merge merge_one a.map b.map in
      { map; reachable = true }

(* ------------------------------------------------------------------ *)
(* Widening ([+loopexec] back-edge joins)                              *)
(* ------------------------------------------------------------------ *)

(* Structural refstate equality for fixpoint convergence.  Unlike
   {!refstate_same} (which compares alias sets physically — right for
   write elision, fatal for convergence, since [Set.union] rebuilds),
   alias sets compare by contents.  Blame locations are deliberately
   ignored: they only affect message text, the final reporting pass
   recomputes them, and including them could keep an abstractly stable
   store oscillating forever. *)
let refstate_equal (a : refstate) (b : refstate) =
  a == b
  || equal_defstate a.rs_def b.rs_def
     && equal_nullstate a.rs_null b.rs_null
     && equal_allocstate a.rs_alloc b.rs_alloc
     && Bool.equal a.rs_offset b.rs_offset
     && Sref.Set.equal a.rs_aliases b.rs_aliases

let equal (a : t) (b : t) =
  Bool.equal a.reachable b.reachable
  && (a.map == b.map || Sref.Map.equal refstate_equal a.map b.map)

(** Refstate join for the loop fixpoint: the merge rules, but silent and
    resolved toward danger — dead dominates ({!State.widen_def}),
    irreconcilable allocation states keep the stronger obligation
    ({!State.widen_alloc}) — so anomalies survive to the final reporting
    pass instead of being error-masked here. *)
let widen_refstate (xa : refstate) (xb : refstate) : refstate =
  if xa == xb then xa
  else
    let alloc =
      (* mirror the merge: a dead side's allocation state carries no
         information, the live side's survives *)
      if equal_defstate xa.rs_def DSdead then
        if equal_defstate xb.rs_def DSdead then widen_alloc xa.rs_alloc xb.rs_alloc
        else xb.rs_alloc
      else if equal_defstate xb.rs_def DSdead then xa.rs_alloc
      else widen_alloc xa.rs_alloc xb.rs_alloc
    in
    {
      rs_def = widen_def xa.rs_def xb.rs_def;
      rs_null = merge_null xa.rs_null xb.rs_null;
      rs_alloc = alloc;
      rs_offset = xa.rs_offset || xb.rs_offset;
      rs_aliases =
        (if xa.rs_aliases == xb.rs_aliases then xa.rs_aliases
         else Sref.Set.union xa.rs_aliases xb.rs_aliases);
      rs_defloc = (if xa.rs_defloc <> None then xa.rs_defloc else xb.rs_defloc);
      rs_nullloc =
        (if equal_nullstate xa.rs_null xb.rs_null then xa.rs_nullloc
         else if equal_nullstate (merge_null xa.rs_null xb.rs_null) xa.rs_null
         then xa.rs_nullloc
         else xb.rs_nullloc);
      rs_allocloc =
        (if xa.rs_allocloc <> None then xa.rs_allocloc else xb.rs_allocloc);
    }

(** Widening join of two stores at a loop back edge.  Same one-sided
    fill-in rules as {!merge} (so references first bound inside the body
    get a sensible implicit state on the entry side), but reports
    nothing: the fixpoint iterations are silent, only the final pass over
    the converged store emits diagnostics. *)
let widen (a : t) (b : t) : t =
  match (a.reachable, b.reachable) with
  | false, false -> { a with reachable = false }
  | false, true -> b
  | true, false -> a
  | true, true when a.map == b.map -> a
  | true, true ->
      let widen_one r (sa : refstate option) (sb : refstate option) :
          refstate option =
        match (sa, sb) with
        | Some xa, Some xb when xa == xb -> sa
        | _ ->
            let other_def = function
              | Some (x : refstate) -> x.rs_def
              | None -> DSdefined
            in
            let fill st s other = function
              | Some x -> x
              | None ->
                  { unknown_refstate with rs_def = derived_def st s ~other }
            in
            let xa = fill a r (other_def sb) sa
            and xb = fill b r (other_def sa) sb in
            Some (widen_refstate xa xb)
      in
      { map = Sref.Map.merge widen_one a.map b.map; reachable = true }

(** Collapse every binding deeper than [depth] onto its depth-[depth]
    ancestor (joining states with {!widen_refstate}), and rewrite alias
    sets through the same cap.  This is the widening that makes the
    per-loop reference universe finite: a list walk like [p = p->next]
    otherwise manufactures one more derivation level per iteration and
    the fixpoint never closes. *)
let collapse_deep ~depth (st : t) : t =
  if not (Sref.Map.exists (fun r _ -> Sref.depth r > depth) st.map) then st
  else
    let cap r = Sref.ancestor_at_depth r depth in
    let collapse_aliases (s : refstate) =
      let a' = Sref.Set.map cap s.rs_aliases in
      if a' == s.rs_aliases then s else { s with rs_aliases = a' }
    in
    let map =
      Sref.Map.fold
        (fun r s acc ->
          let r' = cap r in
          let s = collapse_aliases s in
          let s =
            match Sref.Map.find_opt r' acc with
            | None -> s
            | Some prior -> widen_refstate prior s
          in
          Sref.Map.add r' s acc)
        st.map Sref.Map.empty
    in
    { st with map }

let pp ppf st =
  Sref.Map.iter
    (fun r s ->
      Fmt.pf ppf "%-30s def=%s null=%s alloc=%s%s@\n" (Sref.to_string r)
        (defstate_string s.rs_def)
        (nullstate_string s.rs_null)
        (allocstate_string s.rs_alloc)
        (if Sref.Set.is_empty s.rs_aliases then ""
         else Fmt.str " aliases=%a" Sref.Set.pp s.rs_aliases))
    st.map
