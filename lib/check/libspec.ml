(** Interface libraries for modular checking.

    Section 7: "By using libraries to store interface information, a
    representative 5000 line module is checked in under 10 seconds."

    A library is the externally visible interface of a program — typedefs,
    struct layouts, globals and function signatures, all with their
    annotations — rendered as an annotated C header.  Loading a library is
    just parsing that header into a fresh (or shared) program environment,
    so a client module can be checked without re-analysing the
    implementation it links against. *)

module Ctype = Sema.Ctype

(* C declarator printing for semantic types (inside-out rule). *)
let rec decl_string (name : string) (ty : Ctype.t) : string =
  match ty with
  | Ctype.Cnamed (n, _) ->
      if name = "" then n else Printf.sprintf "%s %s" n name
  | Ctype.Cptr inner -> (
      match Ctype.unroll inner with
      | Ctype.Cfunc _ | Ctype.Carray _ ->
          decl_string (Printf.sprintf "(*%s)" name) inner
      | _ -> decl_string (Printf.sprintf "*%s" name) inner)
  | Ctype.Carray (inner, n) ->
      let sz = match n with Some n -> string_of_int n | None -> "" in
      decl_string (Printf.sprintf "%s[%s]" name sz) inner
  | Ctype.Cfunc f ->
      let params =
        if f.Ctype.cf_params = [] && not f.Ctype.cf_varargs then "void"
        else
          String.concat ", "
            (List.map (decl_string "") f.Ctype.cf_params
            @ if f.Ctype.cf_varargs then [ "..." ] else [])
      in
      decl_string (Printf.sprintf "%s(%s)" name params) f.Ctype.cf_ret
  | base ->
      let b =
        match base with
        | Ctype.Cvoid -> "void"
        | Ctype.Cbool -> "int"
        | Ctype.Cint (Ctype.Ichar Ctype.Signed) -> "char"
        | Ctype.Cint (Ctype.Ichar Ctype.Unsigned) -> "unsigned char"
        | Ctype.Cint (Ctype.Ishort Ctype.Signed) -> "short"
        | Ctype.Cint (Ctype.Ishort Ctype.Unsigned) -> "unsigned short"
        | Ctype.Cint (Ctype.Iint Ctype.Signed) -> "int"
        | Ctype.Cint (Ctype.Iint Ctype.Unsigned) -> "unsigned int"
        | Ctype.Cint (Ctype.Ilong Ctype.Signed) -> "long"
        | Ctype.Cint (Ctype.Ilong Ctype.Unsigned) -> "unsigned long"
        | Ctype.Cfloat Ctype.Ffloat -> "float"
        | Ctype.Cfloat Ctype.Fdouble -> "double"
        | Ctype.Cstruct tag -> "struct " ^ tag
        | Ctype.Cunion tag -> "union " ^ tag
        | Ctype.Cenum tag -> "enum " ^ tag
        | _ -> "int"
      in
      if name = "" then b else Printf.sprintf "%s %s" b name

let annots_prefix (set : Annot.set) : string =
  (* [inferred] is a provenance marker, not an Appendix B word: [to_words]
     never renders it, but a dumped library must carry it so a later
     [-load-lib] distinguishes declared from synthesized interfaces. *)
  let words =
    Annot.to_words set @ if Annot.is_inferred set then [ "inferred" ] else []
  in
  match words with
  | [] -> ""
  | words ->
      String.concat "" (List.map (fun w -> Printf.sprintf "/*@%s@*/ " w) words)

(* ------------------------------------------------------------------ *)
(* Versioned, hash-stamped persistence                                 *)
(* ------------------------------------------------------------------ *)

(* On-disk artifacts (interface libraries, the incremental service's
   summary caches) share one framing: a kind+version line followed by a
   content stamp over the payload.  A reader rejects artifacts of the
   wrong kind or version and artifacts whose payload does not digest to
   the stamp, so a stale or truncated cache can never silently corrupt a
   run. *)

let library_kind = "interface-library"
let library_version = 1

let stamp ~kind ~version payload =
  Printf.sprintf "/* olclint %s format %d */\n/* stamp %s */\n%s" kind version
    (Digest.to_hex (Digest.string payload))
    payload

(* Split the first two lines off a stamped artifact. *)
let split2 text =
  match String.index_opt text '\n' with
  | None -> None
  | Some i -> (
      let line1 = String.sub text 0 i in
      let rest = String.sub text (i + 1) (String.length text - i - 1) in
      match String.index_opt rest '\n' with
      | None -> None
      | Some j ->
          let line2 = String.sub rest 0 j in
          let payload = String.sub rest (j + 1) (String.length rest - j - 1) in
          Some (line1, line2, payload))

let unstamp ~kind text : (int * string, string) result =
  match split2 text with
  | None -> Error "truncated stamped artifact"
  | Some (line1, line2, payload) -> (
      let version =
        try
          Scanf.sscanf line1 "/* olclint %s@ format %d */" (fun k v ->
              if String.equal k kind then Some v else None)
        with Scanf.Scan_failure _ | Failure _ | End_of_file -> None
      in
      match version with
      | None -> Error (Printf.sprintf "not an olclint %s artifact" kind)
      | Some v -> (
          let hex =
            try
              Scanf.sscanf line2 "/* stamp %s@ */" (fun h -> Some (String.trim h))
            with Scanf.Scan_failure _ | Failure _ | End_of_file -> None
          in
          match hex with
          | None -> Error "missing stamp line"
          | Some hex ->
              if String.equal hex (Digest.to_hex (Digest.string payload)) then
                Ok (v, payload)
              else Error "stamp mismatch (artifact corrupted or truncated)"))

let is_stamped text =
  String.length text >= 10 && String.sub text 0 10 = "/* olclint"

(** Render the public interface of [prog] as an annotated header. *)
let save (prog : Sema.program) : string =
  let buf = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "/* interface library generated from %s */\n\n" prog.Sema.p_file;
  (* struct and union layouts *)
  List.iter
    (fun tag ->
      match Hashtbl.find_opt prog.Sema.p_structs tag with
      | Some su when String.length tag > 0 && tag.[0] <> '<' ->
          pf "%s %s {\n" (if su.Sema.su_union then "union" else "struct") tag;
          List.iter
            (fun (f : Sema.field) ->
              pf "  %s%s;\n"
                (annots_prefix f.Sema.sf_annots.Sema.an)
                (decl_string f.Sema.sf_name f.Sema.sf_ty))
            su.Sema.su_fields;
          pf "};\n\n"
      | _ -> ())
    (Sema.struct_order prog);
  (* typedefs *)
  List.iter
    (fun name ->
      match Hashtbl.find_opt prog.Sema.p_typedefs name with
      | Some (ty, set) ->
          pf "%stypedef %s;\n" (annots_prefix set) (decl_string name ty)
      | None -> ())
    (Sema.typedef_order prog);
  if (Sema.typedef_order prog) <> [] then pf "\n";
  (* globals (static globals are not part of the interface) *)
  List.iter
    (fun name ->
      match Hashtbl.find_opt prog.Sema.p_globals name with
      | Some gv when not gv.Sema.gv_static ->
          pf "%sextern %s;\n"
            (annots_prefix gv.Sema.gv_annots.Sema.an)
            (decl_string name gv.Sema.gv_ty)
      | _ -> ())
    (Sema.global_order prog);
  if (Sema.global_order prog) <> [] then pf "\n";
  (* functions *)
  List.iter
    (fun name ->
      match Hashtbl.find_opt prog.Sema.p_funcs name with
      | Some fs when not fs.Sema.fs_static ->
          let params =
            if fs.Sema.fs_params = [] && not fs.Sema.fs_varargs then "void"
            else
              String.concat ", "
                (List.map
                   (fun (p : Sema.param) ->
                     annots_prefix p.Sema.pr_annots.Sema.an
                     ^ decl_string p.Sema.pr_name p.Sema.pr_ty)
                   fs.Sema.fs_params
                @ if fs.Sema.fs_varargs then [ "..." ] else [])
          in
          let globals =
            match fs.Sema.fs_globals with
            | [] -> ""
            | gs ->
                Printf.sprintf " /*@globals %s@*/"
                  (String.concat "; "
                     (List.map
                        (fun (g, (set : Annot.set)) ->
                          let words = Annot.to_words set in
                          String.concat " " (words @ [ g ]))
                        gs))
          in
          let modifies =
            match fs.Sema.fs_modifies with
            | None -> ""
            | Some [] -> " /*@modifies nothing@*/"
            | Some ms ->
                Printf.sprintf " /*@modifies %s@*/" (String.concat ", " ms)
          in
          pf "%sextern %s%s%s;\n"
            (annots_prefix fs.Sema.fs_ret_annots.Sema.an)
            (decl_string (Printf.sprintf "%s(%s)" name params) fs.Sema.fs_ret)
            globals modifies
      | _ -> ())
    (Sema.func_order prog);
  stamp ~kind:library_kind ~version:library_version (Buffer.contents buf)

(** Load an interface library (produced by {!save} or hand-written) into a
    program environment.  Stamped artifacts are verified (kind, version,
    content hash) before parsing; raw annotated headers still load as
    before, so hand-written libraries keep working. *)
let load ?(flags = Annot.Flags.default) ?into ~file (text : string) :
    Sema.program =
  let loc = { Cfront.Loc.file; line = 1; col = 1 } in
  let text =
    if is_stamped text then
      match unstamp ~kind:library_kind text with
      | Ok (v, payload) when v = library_version -> payload
      | Ok (v, _) ->
          Cfront.Diag.fatal ~loc ~code:"lib"
            "interface library has format version %d, this build reads %d" v
            library_version
      | Error msg ->
          Cfront.Diag.fatal ~loc ~code:"lib" "bad interface library: %s" msg
    else text
  in
  Sema.analyze_string ~flags ?into ~file text
