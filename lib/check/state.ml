(** Dataflow values of the storage model (paper, Sections 3 and 5).

    "Three values are associated with each reference: the definition state
    (defined, partially defined, allocated, etc.), the null state
    (definitely null, possibly null, not null, etc.), and the allocation
    state (corresponding to the allocation annotation, e.g., only, temp)." *)

(** Definition state of the storage a reference denotes. *)
type defstate =
  | DSundefined  (** storage exists but has not been assigned a value *)
  | DSallocated
      (** the reference has a value pointing to allocated storage whose
          contents are undefined (result of [malloc]) *)
  | DSpdefined  (** partially defined: some reachable storage undefined *)
  | DSdefined  (** completely defined *)
  | DSdead
      (** dead: released, or obligation transferred; may not be used *)
  | DSerror  (** error marker set after reporting, to stop cascades *)
[@@deriving eq, ord, show]

(** Null state of a pointer reference. *)
type nullstate =
  | NSnull  (** definitely NULL on this path *)
  | NSpossnull  (** may be NULL *)
  | NSnotnull  (** known not NULL *)
  | NSrel  (** relnull: assumed non-null at uses, assignable from null *)
  | NSuntracked  (** not a pointer, or nullness not tracked *)
[@@deriving eq, ord, show]

(** Allocation state: who owns the storage and what the obligations are. *)
type allocstate =
  | ASonly  (** sole reference; obliged to release or transfer *)
  | ASowned  (** owns storage that [ASdependent] references share *)
  | ASdependent  (** shares storage owned elsewhere; must not release *)
  | ASshared  (** arbitrarily shared; never released (GC) *)
  | AStemp  (** temporary: may not be released or newly shared *)
  | ASkept
      (** obligation satisfied by a [keep] transfer; still usable *)
  | ASobserver  (** may not be modified or released *)
  | ASexposed  (** exposed internal storage: modifiable, not freeable *)
  | ASrefcounted
      (** a live reference to reference-counted storage; must be consumed
          by a [killref] parameter or transferred *)
  | ASstack  (** automatic storage (address of a local) *)
  | ASstatic  (** static-duration storage (string literals, statics) *)
  | ASnone  (** unmanaged / not pointer-valued *)
  | ASerror  (** error marker after reporting *)
[@@deriving eq, ord, show]

let defstate_string = function
  | DSundefined -> "undefined"
  | DSallocated -> "allocated"
  | DSpdefined -> "partially defined"
  | DSdefined -> "defined"
  | DSdead -> "dead"
  | DSerror -> "error"

let nullstate_string = function
  | NSnull -> "null"
  | NSpossnull -> "possibly null"
  | NSnotnull -> "non-null"
  | NSrel -> "relnull"
  | NSuntracked -> "untracked"

let allocstate_string = function
  | ASonly -> "only"
  | ASowned -> "owned"
  | ASdependent -> "dependent"
  | ASshared -> "shared"
  | AStemp -> "temp"
  | ASkept -> "kept"
  | ASobserver -> "observer"
  | ASexposed -> "exposed"
  | ASrefcounted -> "refcounted"
  | ASstack -> "stack"
  | ASstatic -> "static"
  | ASnone -> "unmanaged"
  | ASerror -> "error"

(* ------------------------------------------------------------------ *)
(* Merge rules at confluence points (paper, Section 5)                 *)
(* ------------------------------------------------------------------ *)

(** "Definition states are combined using the weakest assumption."
    [DSdead] on one branch only is a confluence anomaly handled separately
    by the store merge (this function just picks a survivor). *)
let merge_def a b =
  if equal_defstate a b then a
  else
    let rank = function
      | DSerror -> -1
      | DSdead -> 0
      | DSundefined -> 1
      | DSallocated -> 2
      | DSpdefined -> 3
      | DSdefined -> 4
    in
    if rank a < rank b then
      (* dead/undefined etc. dominate; pdefined vs defined -> pdefined *)
      match (a, b) with
      | DSallocated, DSdefined | DSallocated, DSpdefined -> DSpdefined
      | DSundefined, DSdefined | DSundefined, DSpdefined -> DSpdefined
      | _ -> a
    else
      match (b, a) with
      | DSallocated, DSdefined | DSallocated, DSpdefined -> DSpdefined
      | DSundefined, DSdefined | DSundefined, DSpdefined -> DSpdefined
      | _ -> b

(** Is [dead] vs non-dead — the "deallocated on only one path" anomaly? *)
let def_conflict a b =
  (equal_defstate a DSdead) <> (equal_defstate b DSdead)
  && not (equal_defstate a DSerror)
  && not (equal_defstate b DSerror)

let merge_null a b =
  if equal_nullstate a b then a
  else
    match (a, b) with
    | NSuntracked, x | x, NSuntracked -> x
    | NSrel, x | x, NSrel -> x
    | NSnull, NSnull -> NSnull
    | (NSnull | NSpossnull), _ | _, (NSnull | NSpossnull) -> NSpossnull
    | NSnotnull, NSnotnull -> NSnotnull

(** Allocation states merge only when consistent; inconsistent combinations
    (e.g. [kept] on one branch, [only] on the other — Fig. 5/6) are
    confluence anomalies.  Returns [Error (a, b)] in that case. *)
let merge_alloc a b : (allocstate, allocstate * allocstate) result =
  if equal_allocstate a b then Ok a
  else
    match (a, b) with
    | ASerror, x | x, ASerror -> Ok x
    | ASnone, x | x, ASnone -> Ok x
    (* kept vs keep-like combinations that carry no live obligation *)
    | ASkept, ASdependent | ASdependent, ASkept -> Ok ASdependent
    | AStemp, ASdependent | ASdependent, AStemp -> Ok ASdependent
    | ASstack, ASstatic | ASstatic, ASstack -> Ok ASstatic
    (* an obligation on one side but not the other: anomaly *)
    | (ASonly | ASowned), _ | _, (ASonly | ASowned) -> Error (a, b)
    | _ -> Error (a, b)

(* ------------------------------------------------------------------ *)
(* Widening joins ([+loopexec] back-edge fixpoint)                     *)
(* ------------------------------------------------------------------ *)

(** Definition-state join for the loop fixpoint.  Like {!merge_def} —
    which already lets [DSdead] dominate, so a reference released on some
    iteration stays dead at the converged loop entry and the final
    reporting pass flags the use — except that the [DSerror] cascade-stop
    marker is transparent: a silenced fixpoint iteration may have planted
    it, and letting it absorb the join would mask the very state the
    final pass must report on. *)
let widen_def a b =
  match (a, b) with
  | DSerror, x | x, DSerror -> x
  | _ -> merge_def a b

(** Allocation-state join for the loop fixpoint.  Where the reporting
    merge would declare a confluence anomaly ({!merge_alloc} [Error]),
    the fixpoint instead keeps the side with the stronger outstanding
    obligation, so the danger survives to the final reporting pass
    instead of being error-masked.  Total and commutative. *)
let widen_alloc a b =
  match merge_alloc a b with
  | Ok x -> x
  | Error _ ->
      let rank = function
        | ASonly -> 12
        | ASowned -> 11
        | ASrefcounted -> 10
        | ASkept -> 9
        | ASdependent -> 8
        | ASshared -> 7
        | AStemp -> 6
        | ASobserver -> 5
        | ASexposed -> 4
        | ASstack -> 3
        | ASstatic -> 2
        | ASnone -> 1
        | ASerror -> 0
      in
      if rank a >= rank b then a else b

(** Does this allocation state carry an obligation to release storage? *)
let has_obligation = function
  | ASonly | ASowned | ASrefcounted -> true
  | _ -> false

(** May storage in this state be passed where an obligation is required
    (an [only] parameter / assignment / return)? *)
let can_transfer_obligation = function
  | ASonly | ASowned | ASrefcounted | ASnone -> true
  | _ -> false

(** May this storage be released at all (even given an obligation)? *)
let releasable = function
  | ASonly | ASowned | ASnone -> true
  | _ -> false
