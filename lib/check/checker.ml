(** The memory checker: per-procedure abstract interpretation driven by
    interface annotations (paper, Sections 2 and 5).

    Key properties reproduced from the paper:
    - each function is checked independently, using only the annotations of
      the functions it calls ("full interprocedural analysis is too
      expensive to be practical");
    - loops are analysed as executing zero or one times (no back edges, no
      fixpoints: "the effects of any while or for loop are identical to
      those for executing the loop zero or one times");
    - any predicate may be true or false; guard refinements track null
      tests including [truenull]/[falsenull] test functions;
    - confluence points merge branch states; irreconcilable states are
      reported as anomalies and replaced by an error marker;
    - parameters are modelled by a local variable aliasing the externally
      visible reference ("we use l to refer to the local variable and argl
      to refer to the externally visible parameter"). *)

open Cfront
open State
module Flags = Annot.Flags
module Ctype = Sema.Ctype

(* ------------------------------------------------------------------ *)
(* Values                                                              *)
(* ------------------------------------------------------------------ *)

(** Result of evaluating an expression. *)
type value = {
  v_ty : Ctype.t;
  v_ref : Sref.t option;  (** reference the expression denotes, if tracked *)
  v_def : defstate;
  v_null : nullstate;
  v_alloc : allocstate;
  v_offset : bool;  (** result of pointer arithmetic (an offset pointer) *)
  v_addrof : bool;
      (** the value is [&r] for the lvalue [v_ref]: states describe the
          pointee, and the reference must not be value-aliased *)
}

let unit_value ty =
  {
    v_ty = ty;
    v_ref = None;
    v_def = DSdefined;
    v_null = NSuntracked;
    v_alloc = ASnone;
    v_offset = false;
    v_addrof = false;
  }

let value_of_state ty r (s : Store.refstate) =
  {
    v_ty = ty;
    v_ref = Some r;
    v_def = s.rs_def;
    v_null = s.rs_null;
    v_alloc = s.rs_alloc;
    v_offset = s.rs_offset;
    v_addrof = false;
  }

(* ------------------------------------------------------------------ *)
(* Environment                                                         *)
(* ------------------------------------------------------------------ *)

type localinfo = {
  li_ty : Ctype.t;
  li_annots : Annot.set;
  li_loc : Loc.t;
  li_param : int option;  (** parameter index if this is a parameter *)
}

type scope = { mutable vars : (string * localinfo) list }

(** Raw abstract state at one procedure exit, observed before the exit
    checks mark error states.  This is the data annotation inference
    abstracts into per-procedure summaries (return never-null, return
    always carries an obligation, parameter consumed on every path). *)
type exit_info = {
  xi_loc : Loc.t;
  xi_ret : (nullstate * allocstate) option;
      (** the returned value's states, when a pointer value is returned *)
  xi_params : (defstate * allocstate) array;
      (** the externally visible view of each parameter, by index *)
}

(** What [+allocmodel] remembers about one realloc-family call: the
    pre-call states of every name of the consumed argument's value.  On
    the result's NULL branch those names are resurrected (the old block
    is still allocated); a name overwritten before any test is pruned,
    and pruning the last name is the [realloclost] leak. *)
type realloc_source = {
  rsrc_old : Sref.t;  (** the consumed first argument *)
  mutable rsrc_saved : (Sref.t * Store.refstate) list;
      (** surviving pre-call images, pruned as assignments overwrite them *)
  rsrc_loc : Loc.t;  (** the call site *)
}

type env = {
  prog : Sema.program;
  flags : Flags.t;
  fs : Sema.funsig;
  diags : Diag.Collector.t;
  exit_obs : (exit_info -> unit) option;
      (** called once per reachable procedure exit (summary extraction) *)
  proc_inferred : bool;
      (** this check consults at least one inferred annotation (own
          signature or any direct callee's), so its messages carry the
          provenance mark *)
  mutable scopes : scope list;  (** innermost first *)
  mutable breaks : Store.t list list;  (** per enclosing breakable construct *)
  mutable continues : Store.t list list;
  mutable fresh : int;
  mutable statics : int;
  conflict_memo : (string, unit) Hashtbl.t;
  realloc_sources : (int, realloc_source) Hashtbl.t;
      (** [+allocmodel]: live realloc results by [Rfresh] id *)
  summaries : Summary.table option;
      (** [+xproc]: interprocedural effect summaries, consulted at call
          sites whose slot has no explicit or inferred annotation *)
  mutable escaped_args : Sref.Set.t;
      (** [+xproc]: references a summarized callee stored away (escape
          effect); an explicit release afterwards is [escapefree] *)
}

let emit env ?(severity = Diag.Err) ?(notes = []) ~loc ~code fmt =
  Fmt.kstr
    (fun text ->
      Diag.Collector.emit env.diags
        (Diag.make ~severity ~notes ~proc:env.fs.Sema.fs_name
           ~inferred:env.proc_inferred ~loc ~code text))
    fmt

let push_scope env = env.scopes <- { vars = [] } :: env.scopes

let pop_scope env =
  match env.scopes with
  | s :: rest ->
      env.scopes <- rest;
      s
  | [] -> invalid_arg "pop_scope: no scope"

let add_local env name info =
  match env.scopes with
  | s :: _ -> s.vars <- (name, info) :: s.vars
  | [] -> invalid_arg "add_local: no scope"

let find_local env name : localinfo option =
  let rec go = function
    | [] -> None
    | s :: rest -> (
        match List.assoc_opt name s.vars with
        | Some i -> Some i
        | None -> go rest)
  in
  go env.scopes

let fresh_id env =
  env.fresh <- env.fresh + 1;
  env.fresh

let static_id env =
  env.statics <- env.statics + 1;
  env.statics

(* ------------------------------------------------------------------ *)
(* Types of references                                                 *)
(* ------------------------------------------------------------------ *)

(** Type of the storage denoted by a reference (best effort). *)
let rec type_of_ref env (r : Sref.t) : Ctype.t option =
  match Sref.view r with
  | Sref.Root (Sref.Rlocal n) ->
      Option.map (fun i -> i.li_ty) (find_local env n)
  | Sref.Root (Sref.Rparam (i, _)) ->
      List.nth_opt env.fs.fs_params i
      |> Option.map (fun p -> p.Sema.pr_ty)
  | Sref.Root (Sref.Rglobal g) ->
      Hashtbl.find_opt env.prog.Sema.p_globals g
      |> Option.map (fun gv -> gv.Sema.gv_ty)
  | Sref.Root Sref.Rret -> Some env.fs.fs_ret
  | Sref.Root (Sref.Rfresh _) -> None
  | Sref.Root (Sref.Rstatic _) -> Some Ctype.charptr
  | Sref.Field (b, f) ->
      Option.bind (type_of_ref env b) (fun bty ->
          let obj =
            (* field access through a pointer or directly on an aggregate *)
            match Ctype.deref bty with Some t -> t | None -> bty
          in
          Option.bind (Ctype.su_tag obj) (fun tag ->
              Sema.find_field env.prog tag f)
          |> Option.map (fun fl -> fl.Sema.sf_ty))
  | Sref.Deref b -> Option.bind (type_of_ref env b) Ctype.deref
  | Sref.Index (b, _) -> Option.bind (type_of_ref env b) Ctype.deref

(** Declared annotations for a reference (field annotations for field refs,
    parameter/global annotations for roots).  Used to decide expected
    allocation/null states at interface points. *)
let annots_of_ref env (r : Sref.t) : Annot.set =
  match Sref.view r with
  | Sref.Root (Sref.Rlocal n) -> (
      match find_local env n with
      | Some i -> (
          match i.li_param with
          | Some idx -> (
              match List.nth_opt env.fs.fs_params idx with
              | Some p -> p.Sema.pr_annots.Sema.an
              | None -> i.li_annots)
          | None -> i.li_annots)
      | None -> Annot.empty)
  | Sref.Root (Sref.Rparam (i, _)) -> (
      match List.nth_opt env.fs.fs_params i with
      | Some p -> p.Sema.pr_annots.Sema.an
      | None -> Annot.empty)
  | Sref.Root (Sref.Rglobal g) -> (
      match Hashtbl.find_opt env.prog.Sema.p_globals g with
      | Some gv -> gv.Sema.gv_annots.Sema.an
      | None -> Annot.empty)
  | Sref.Root Sref.Rret -> env.fs.fs_ret_annots.Sema.an
  | Sref.Root (Sref.Rfresh _) | Sref.Root (Sref.Rstatic _) -> Annot.empty
  | Sref.Field (b, f) -> (
      match type_of_ref env b with
      | Some bty ->
          let obj =
            match Ctype.deref bty with Some t -> t | None -> bty
          in
          (match
             Option.bind (Ctype.su_tag obj) (fun tag ->
                 Sema.find_field env.prog tag f)
           with
          | Some fl -> fl.Sema.sf_annots.Sema.an
          | None -> Annot.empty)
      | None -> Annot.empty)
  | Sref.Deref _ | Sref.Index _ -> Annot.empty

(* ---------------- [+xproc] summary consultation ------------------- *)

(** Does this slot carry no explicit or inferred allocation annotation,
    so an interprocedural summary may speak for it?  Explicit (and
    inference-installed) annotations always win. *)
let slot_unannotated (e : Sema.eannot) =
  (e.Sema.alloc_implicit || e.Sema.an.Annot.an_alloc = None)
  && not e.Sema.an.Annot.an_killref

(** The callee's effect summary, when [+xproc] is on, the callee is
    defined, and a table was supplied. *)
let summary_of_callee env (fs : Sema.funsig) : Summary.t option =
  if not env.flags.Flags.xproc then None
  else
    match env.summaries with
    | Some tbl when fs.Sema.fs_defined ->
        Hashtbl.find_opt tbl fs.Sema.fs_name
    | _ -> None

(** Is [r] (or an alias image of it) a reference some summarized callee
    stored away? *)
let ref_escaped env st (r : Sref.t) =
  Sref.Set.mem r env.escaped_args
  || not
       (Sref.Set.is_empty
          (Sref.Set.inter (Store.alias_images st r) env.escaped_args))

(** Initial reference state implied by a declaration's annotations, for an
    entity assumed completely defined (function entry). *)
let entry_state env ~(ty : Ctype.t) ~(annots : Annot.set) ~loc : Store.refstate
    =
  ignore env;
  let null =
    if not (Ctype.is_pointer ty) then NSuntracked
    else
      match annots.Annot.an_null with
      | Some Annot.Null -> NSpossnull
      | Some Annot.NotNull | None -> NSnotnull
      | Some Annot.RelNull -> NSrel
  in
  let def =
    match annots.Annot.an_def with
    | Some Annot.Out -> DSallocated
    | Some Annot.Partial -> DSpdefined
    | _ -> DSdefined
  in
  let alloc =
    if not (Ctype.is_pointer ty) then ASnone
    else
      match annots.Annot.an_alloc with
      | Some Annot.Only -> ASonly
      | Some Annot.Keep -> ASonly
          (* callee view: a keep parameter carries an obligation *)
      | Some Annot.Temp -> AStemp
      | Some Annot.Owned -> ASowned
      | Some Annot.Dependent -> ASdependent
      | Some Annot.Shared -> ASshared
      | None -> (
          if annots.Annot.an_killref then
            (* the callee receives one reference and must consume it *)
            ASrefcounted
          else
            match annots.Annot.an_expose with
            | Some Annot.Observer -> ASobserver
            | Some Annot.Exposed -> ASexposed
            | None -> ASnone)
  in
  Store.mk_refstate ~def ~null ~alloc ~defloc:loc ~nullloc:loc ~allocloc:loc ()

(* ------------------------------------------------------------------ *)
(* Use checks                                                          *)
(* ------------------------------------------------------------------ *)

(** Report an rvalue use of storage that is not usable (paper, Section 3:
    "It is an anomaly to use undefined storage as an rvalue", "It is an
    anomaly to use a dead pointer as an rvalue"). *)
let check_rvalue_use env st (r : Sref.t) ~loc =
  let s = Store.get st r in
  let is_array =
    match Option.map Ctype.unroll (type_of_ref env r) with
    | Some (Ctype.Carray _) -> true
    | _ -> false
  in
  if is_array then st
  else begin
  let scalar =
    match Option.map Ctype.unroll (type_of_ref env r) with
    | Some t -> Ctype.is_arith t
    | None -> false
  in
  (match s.Store.rs_def with
  | DSundefined when env.flags.Flags.check_def ->
      let notes =
        match s.Store.rs_defloc with
        | Some l when not (Loc.is_dummy l) ->
            [ Diag.note ~loc:l (Fmt.str "Storage %s becomes undefined" (Sref.to_string r)) ]
        | _ -> []
      in
      emit env ~loc ~code:"usedef" ~notes
        "Variable %s used before definition" (Sref.to_string r)
  | DSpdefined when scalar && env.flags.Flags.check_def ->
      (* for a scalar, "partially defined" can only mean defined on some
         paths: the paper's admitted spurious case ("a use-before-
         definition error in a branch that would only be taken if an
         earlier branch initialized the variable") *)
      emit env ~loc ~code:"usedef"
        "Variable %s may be used before definition" (Sref.to_string r)
  | DSdead when env.flags.Flags.check_use_released ->
      let notes =
        match s.Store.rs_defloc with
        | Some l when not (Loc.is_dummy l) ->
            [ Diag.note ~loc:l (Fmt.str "Storage %s is released" (Sref.to_string r)) ]
        | _ -> []
      in
      emit env ~loc ~code:"usereleased" ~notes
        "Dead storage %s used as rvalue" (Sref.to_string r)
  | _ -> ());
  (* stop error cascades: a reported use marks the reference usable *)
  match s.Store.rs_def with
  | DSundefined | DSdead -> Store.set_def ~loc st r DSerror
  | DSpdefined when scalar -> Store.set_def ~loc st r DSerror
  | _ -> st
  end

(** Report a dereference of a possibly-null pointer, then refine to
    non-null to avoid cascades.  [how] describes the access for the
    message, e.g. "Arrow access from" or "Dereference of". *)
let check_deref env st (r : Sref.t) ~(how : string) ~(access : string) ~loc =
  let s = Store.get st r in
  match s.Store.rs_null with
  | (NSnull | NSpossnull) when env.flags.Flags.check_null ->
      let state_word =
        match s.Store.rs_null with NSnull -> "null" | _ -> "possibly null"
      in
      let notes =
        match s.Store.rs_nullloc with
        | Some l when not (Loc.is_dummy l) ->
            [ Diag.note ~loc:l (Fmt.str "Storage %s may become null" (Sref.to_string r)) ]
        | _ -> []
      in
      emit env ~loc ~code:"nullderef" ~notes "%s %s pointer %s: %s" how
        state_word (Sref.to_string r) access;
      Store.refine_null ~loc st r NSnotnull
  | _ -> st

(* ------------------------------------------------------------------ *)
(* Reference construction from expressions                             *)
(* ------------------------------------------------------------------ *)

(** Resolve an identifier to a reference plus its type.  Returns [None] for
    enum constants and functions (not storage). *)
let ident_ref env (name : string) : (Sref.t * Ctype.t) option =
  match find_local env name with
  | Some i -> Some (Sref.root (Sref.Rlocal name), i.li_ty)
  | None -> (
      match Hashtbl.find_opt env.prog.Sema.p_globals name with
      | Some gv -> Some (Sref.root (Sref.Rglobal name), gv.Sema.gv_ty)
      | None -> None)

(** Ensure a global has an entry in the store (globals are tracked lazily:
    first touch initializes from the declaration). *)
let touch_global env st (name : string) : Store.t =
  let r = Sref.root (Sref.Rglobal name) in
  if Store.mem st r then st
  else
    match Hashtbl.find_opt env.prog.Sema.p_globals name with
    | Some gv ->
        let annots = gv.Sema.gv_annots.Sema.an in
        let annots =
          (* the function's globals list can mark it undef at entry *)
          match List.assoc_opt name env.fs.fs_globals with
          | Some ga when ga.Annot.an_undef ->
              { annots with Annot.an_def = Some Annot.Out }
          | _ -> annots
        in
        let s = entry_state env ~ty:gv.Sema.gv_ty ~annots ~loc:gv.Sema.gv_loc in
        let s =
          match List.assoc_opt name env.fs.fs_globals with
          | Some ga when ga.Annot.an_undef ->
              let def =
                (* aggregate storage exists; only its contents are missing *)
                if Ctype.is_aggregate gv.Sema.gv_ty then DSallocated
                else DSundefined
              in
              { s with Store.rs_def = def }
          | _ -> s
        in
        Store.set st r s
    | None -> st

(* ------------------------------------------------------------------ *)
(* The allocator model (+allocmodel)                                   *)
(* ------------------------------------------------------------------ *)

(** The realloc source feeding [r], when [r] (or a same-value name of it)
    is a live realloc-family result. *)
let realloc_source_of env st (r : Sref.t) : realloc_source option =
  if Hashtbl.length env.realloc_sources = 0 then None
  else
    let candidates = Sref.Set.add r (Store.alias_images st r) in
    Sref.Set.fold
      (fun img acc ->
        match acc with
        | Some _ -> acc
        | None -> (
            match Sref.root_of img with
            | Sref.Rfresh (id, _) -> Hashtbl.find_opt env.realloc_sources id
            | _ -> None))
      candidates None

(** A saved image the programmer can still reach by name.  [Rfresh] roots
    are the allocated object itself (a value, not a reference to it) and
    [Rparam] roots are the external mirror of a parameter — neither is an
    expression, so neither can release the old block on its own. *)
let rsrc_is_name (r : Sref.t) : bool =
  match Sref.root_of r with
  | Sref.Rfresh _ | Sref.Rparam _ -> false
  | _ -> true

(** NULL-branch semantics of a modeled realloc: the allocation failed, so
    the old block is still allocated and its surviving names get their
    pre-call states back.  Saved alias edges are restored only between
    survivors — an edge into an overwritten name would tie the old block
    to whatever value that name holds now.  Applied to the store of the
    branch where [r], a realloc result, is refined to null. *)
let allocmodel_resurrect env st (r : Sref.t) : Store.t =
  if not env.flags.Flags.alloc_model then st
  else
    match realloc_source_of env st r with
    | None -> st
    | Some src ->
        let surviving =
          List.fold_left
            (fun acc (oref, _) -> Sref.Set.add oref acc)
            Sref.Set.empty src.rsrc_saved
        in
        List.fold_left
          (fun st (oref, (s : Store.refstate)) ->
            Store.set st oref
              {
                s with
                Store.rs_aliases = Sref.Set.inter s.Store.rs_aliases surviving;
              })
          st src.rsrc_saved

(** Assignment bookkeeping for the live realloc sources.  Overwriting a
    name of an old block prunes it from that source's survivor list;
    overwriting the LAST name with the still-possibly-null result of the
    same realloc is the classic [p = realloc(p, n)] lost-pointer leak. *)
let allocmodel_assign env st ~(rhs : value) ~(overwritten : Sref.Set.t) ~loc :
    unit =
  if env.flags.Flags.alloc_model && Hashtbl.length env.realloc_sources > 0 then begin
    let rhs_result_id =
      (* the realloc source whose fresh result the rhs value carries *)
      match rhs.v_ref with
      | Some rr when not rhs.v_addrof ->
          let candidates = Sref.Set.add rr (Store.alias_images st rr) in
          Sref.Set.fold
            (fun img acc ->
              match acc with
              | Some _ -> acc
              | None -> (
                  match Sref.root_of img with
                  | Sref.Rfresh (id, fname)
                    when Hashtbl.mem env.realloc_sources id ->
                      Some (id, fname)
                  | _ -> None))
            candidates None
      | _ -> None
    in
    let lost =
      Hashtbl.fold
        (fun id (src : realloc_source) acc ->
          let survivors =
            List.filter
              (fun (oref, _) -> not (Sref.Set.mem oref overwritten))
              src.rsrc_saved
          in
          let live_names = List.exists (fun (o, _) -> rsrc_is_name o) survivors in
          let had_names =
            List.exists (fun (o, _) -> rsrc_is_name o) src.rsrc_saved
          in
          if
            had_names && (not live_names)
            && (match rhs_result_id with
               | Some (rid, _) -> rid = id
               | None -> false)
            && (match rhs.v_null with NSnull | NSpossnull -> true | _ -> false)
          then (id, src) :: acc
          else begin
            src.rsrc_saved <- survivors;
            acc
          end)
        env.realloc_sources []
    in
    List.iter
      (fun (id, (src : realloc_source)) ->
        let fname =
          match rhs_result_id with Some (_, f) -> f | None -> "realloc"
        in
        let notes =
          [ Diag.note ~loc:src.rsrc_loc
              (Fmt.str
                 "Result of %s may be null while storage %s is still \
                  allocated"
                 fname
                 (Sref.to_string src.rsrc_old));
          ]
        in
        emit env ~loc ~code:"realloclost" ~notes
          "Last reference %s to the pre-realloc block overwritten with the \
           result of %s: storage is lost if the allocation fails (memory \
           leak)"
          (Sref.to_string src.rsrc_old)
          fname;
        Hashtbl.remove env.realloc_sources id)
      lost
  end

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                               *)
(* ------------------------------------------------------------------ *)

(* Normalize member access: "star-p dot f" and "p->f" both become
   [Field (p, f)] when [p] is a pointer; direct struct variables give
   [Field (s, f)]. *)
let rec eval env st (e : Ast.expr) : Store.t * value =
  let loc = e.eloc in
  match e.e with
  | Ast.Eint (v, _) ->
      let value =
        {
          (unit_value Ctype.int_) with
          v_null = (if v = 0L then NSnull else NSuntracked);
        }
      in
      (st, value)
  | Ast.Echar _ -> (st, unit_value Ctype.char_)
  | Ast.Efloat _ -> (st, unit_value (Ctype.Cfloat Ctype.Fdouble))
  | Ast.Estring _ ->
      (* a string literal is static, non-null, defined storage *)
      let r = Sref.root (Sref.Rstatic (static_id env)) in
      let st =
        Store.set st r
          (Store.mk_refstate ~def:DSdefined ~null:NSnotnull ~alloc:ASstatic
             ~allocloc:loc ())
      in
      ( st,
        {
          v_ty = Ctype.charptr;
          v_ref = Some r;
          v_def = DSdefined;
          v_null = NSnotnull;
          v_alloc = ASstatic;
          v_offset = false;
          v_addrof = false;
        } )
  | Ast.Eident "NULL" when ident_ref env "NULL" = None ->
      (* builtin null pointer constant (no preprocessor) *)
      (st, { (unit_value Ctype.voidptr) with v_null = NSnull })
  | Ast.Eident name -> (
      match ident_ref env name with
      | Some (r, ty) ->
          let st =
            match Sref.view r with
            | Sref.Root (Sref.Rglobal g) -> touch_global env st g
            | _ -> st
          in
          let st = check_rvalue_use env st r ~loc in
          (st, value_of_state ty r (Store.get st r))
      | None -> (
          match Hashtbl.find_opt env.prog.Sema.p_enum_consts name with
          | Some _ -> (st, unit_value Ctype.int_)
          | None -> (
              match Hashtbl.find_opt env.prog.Sema.p_funcs name with
              | Some fs ->
                  (* function designator *)
                  let ty =
                    Ctype.Cfunc
                      {
                        Ctype.cf_ret = fs.Sema.fs_ret;
                        cf_params =
                          List.map (fun p -> p.Sema.pr_ty) fs.Sema.fs_params;
                        cf_varargs = fs.Sema.fs_varargs;
                      }
                  in
                  (st, { (unit_value ty) with v_null = NSnotnull })
              | None ->
                  emit env ~loc ~code:"ident" "unrecognized identifier '%s'"
                    name;
                  (st, unit_value Ctype.int_))))
  | Ast.Ecall (f, args) -> eval_call env st f args ~loc
  | Ast.Earrow (b, fname) | Ast.Emember ({ e = Ast.Ederef b; _ }, fname) ->
      (* p->f: p must be defined, non-null *)
      let st, bv = eval env st b in
      let st = arrow_base_checks env st bv ~fname ~loc in
      eval_field env st bv fname ~loc
  | Ast.Emember (b, fname) -> (
      let st, bv = eval env st b in
      match Ctype.unroll bv.v_ty with
      | Ctype.Cptr _ | Ctype.Carray _ ->
          (* s.f where s is a pointer: uncommon, treat like arrow *)
          let st = arrow_base_checks env st bv ~fname ~loc in
          eval_field env st bv fname ~loc
      | _ -> eval_field env st bv fname ~loc)
  | Ast.Ederef b ->
      let st, bv = eval env st b in
      let st =
        match bv.v_ref with
        | Some r ->
            check_deref env st r ~how:"Dereference of"
              ~access:(Fmt.str "*%s" (Sref.to_string r))
              ~loc
        | None -> st
      in
      let ty =
        match Ctype.deref bv.v_ty with Some t -> t | None -> Ctype.int_
      in
      let r = Option.map (fun r -> Sref.deref r) bv.v_ref in
      let st, value =
        match r with
        | Some r ->
            let st =
              (* the pointee of allocated storage is undefined *)
              if Store.mem st r then st
              else
                match bv.v_def with
                | DSallocated ->
                    Store.set st r
                      (Store.mk_refstate ~def:DSundefined
                         ~null:
                           (if Ctype.is_pointer ty then NSpossnull
                            else NSuntracked)
                         ~alloc:ASnone ~defloc:loc ())
                | _ -> st
            in
            (st, value_of_state ty r (Store.get st r))
        | None -> (st, unit_value ty)
      in
      let st = match r with Some r -> check_rvalue_use env st r ~loc | None -> st in
      (st, value)
  | Ast.Eindex (b, idx) ->
      let st, bv = eval env st b in
      let st, _ = eval env st idx in
      let st =
        match bv.v_ref with
        | Some r ->
            check_deref env st r ~how:"Index of"
              ~access:(Fmt.str "%s[...]" (Sref.to_string r))
              ~loc
        | None -> st
      in
      let ty =
        match Ctype.deref bv.v_ty with Some t -> t | None -> Ctype.int_
      in
      let known = Sema.const_eval env.prog idx in
      let iopt =
        match known with
        | Some v when env.flags.Flags.indep_array_elements -> Some (Int64.to_int v)
        | _ -> None
      in
      let r = Option.map (fun r -> Sref.index r iopt) bv.v_ref in
      let value =
        match r with
        | Some r -> value_of_state ty r (Store.get st r)
        | None -> unit_value ty
      in
      (st, value)
  | Ast.Eaddr b -> (
      let st, (lref, lty) = lval env st b in
      let ty = Ctype.Cptr lty in
      match lref with
      | Some r ->
          let alloc =
            match Sref.root_of r with
            | Sref.Rlocal _ -> ASstack
            | Sref.Rglobal _ -> ASstatic
            | _ -> ASdependent
          in
          (* the pointer itself is defined and non-null; the def state of
             the VALUE mirrors the pointee, so completeness checks on the
             argument see through the & *)
          let def =
            match (Store.get st r).Store.rs_def with
            | DSundefined -> DSallocated
            | d -> d
          in
          ( st,
            {
              v_ty = ty;
              v_ref = Some r;
              v_def = def;
              v_null = NSnotnull;
              v_alloc = alloc;
              v_offset = false;
              v_addrof = true;
            } )
      | None -> (st, { (unit_value ty) with v_null = NSnotnull }))
  | Ast.Eunary (_, b) ->
      let st, _ = eval env st b in
      (st, unit_value Ctype.int_)
  | Ast.Epostincr b | Ast.Epostdecr b | Ast.Epreincr b | Ast.Epredecr b ->
      let st, bv = eval env st b in
      (* pointer increment yields an offset pointer *)
      if Ctype.is_pointer bv.v_ty then
        let st =
          match bv.v_ref with
          | Some r ->
              Store.update_images st r (fun s ->
                  (* an incremented only pointer no longer holds a
                     releasable reference to the block start *)
                  s)
          | None -> st
        in
        (st, { bv with v_offset = true; v_ref = None })
      else (st, bv)
  | Ast.Ebinary (op, a, b) -> (
      let st, va = eval env st a in
      let st, vb = eval env st b in
      match op with
      | Ast.Badd | Ast.Bsub
        when Ctype.is_pointer va.v_ty || Ctype.is_pointer vb.v_ty ->
          (* an offset pointer into the same object: keep the base
             reference (the obligation still lives there) but remember the
             offsetness *)
          let ptr = if Ctype.is_pointer va.v_ty then va else vb in
          (st, { ptr with v_offset = true })
      | Ast.Beq | Ast.Bne | Ast.Blt | Ast.Bgt | Ast.Ble | Ast.Bge
      | Ast.Bland | Ast.Blor ->
          (st, unit_value Ctype.Cbool)
      | _ -> (st, unit_value (if Ctype.is_arith va.v_ty then va.v_ty else vb.v_ty)))
  | Ast.Eassign (op, lhs, rhs) -> eval_assign env st op lhs rhs ~loc
  | Ast.Econd (c, t, f) ->
      let st_t, st_f = split_cond env st c in
      let st_t, vt = eval env st_t t in
      let st_f, vf = eval env st_f f in
      let st =
        merge_reporting env ~loc st_t st_f
      in
      let value =
        {
          v_ty = vt.v_ty;
          v_ref = None;
          v_def = merge_def vt.v_def vf.v_def;
          v_null = merge_null vt.v_null vf.v_null;
          v_alloc =
            (match merge_alloc vt.v_alloc vf.v_alloc with
            | Ok a -> a
            | Error _ -> ASerror);
          v_offset = vt.v_offset || vf.v_offset;
          v_addrof = false;
        }
      in
      (st, value)
  | Ast.Ecast (ty, b) ->
      let st, v = eval env st b in
      let cty = Sema.resolve_ty env.prog ~loc ty in
      (* a cast changes the static type but not the tracked states; casting
         the constant 0 to a pointer type keeps its definitely-null state *)
      (st, { v with v_ty = cty })
  | Ast.Esizeof_expr _ | Ast.Esizeof_type _ ->
      (* sizeof does not evaluate its operand (and needs no value:
         "Except sizeof, which does not need the value of its argument") *)
      (st, unit_value Ctype.size_t)
  | Ast.Ecomma (a, b) ->
      let st, _ = eval env st a in
      eval env st b

and arrow_base_checks env st (bv : value) ~fname ~loc : Store.t =
  match bv.v_ref with
  | Some r ->
      check_deref env st r ~how:"Arrow access from"
        ~access:(Fmt.str "%s->%s" (Sref.to_string r) fname)
        ~loc
  | None -> st

(* Field access: the reference is Field (base, f); its state defaults
   depend on the base's definition state. *)
and eval_field env st (bv : value) fname ~loc : Store.t * value =
  let fty =
    let obj =
      match Ctype.deref bv.v_ty with Some t -> t | None -> bv.v_ty
    in
    match
      Option.bind (Ctype.su_tag obj) (fun tag -> Sema.find_field env.prog tag fname)
    with
    | Some fl -> fl.Sema.sf_ty
    | None -> Ctype.int_
  in
  match bv.v_ref with
  | None -> (st, unit_value fty)
  | Some br ->
      let r = Sref.field br fname in
      let st =
        if Store.mem st r then st
        else
          (* materialize from the base state and the field's declared
             annotations *)
          let annots = annots_of_ref env r in
          let s0 = entry_state env ~ty:fty ~annots ~loc in
          let s0 =
            match bv.v_def with
            | DSallocated | DSundefined -> (
                match Ctype.unroll fty with
                | Ctype.Carray _ ->
                    (* embedded array storage exists; contents undefined *)
                    { s0 with Store.rs_def = DSallocated; rs_null = NSnotnull }
                | _ ->
                    {
                      s0 with
                      Store.rs_def = DSundefined;
                      rs_null =
                        (if Ctype.is_pointer fty then NSpossnull
                         else NSuntracked);
                    })
            | _ -> s0
          in
          Store.set st r s0
      in
      let st = check_rvalue_use env st r ~loc in
      (st, value_of_state fty r (Store.get st r))

(* ------------------------------------------------------------------ *)
(* Lvalues                                                             *)
(* ------------------------------------------------------------------ *)

(** Evaluate an expression as an lvalue: no rvalue-use check on the outer
    reference ("Undefined storage may be used as an lvalue since only its
    location is needed"), but base computations are rvalue uses. *)
and lval env st (e : Ast.expr) : Store.t * (Sref.t option * Ctype.t) =
  let loc = e.eloc in
  match e.e with
  | Ast.Eident "NULL" when ident_ref env "NULL" = None ->
      (* NULL is not an lvalue; treated as an untracked location *)
      (st, (None, Ctype.voidptr))
  | Ast.Eident name -> (
      match ident_ref env name with
      | Some (r, ty) ->
          let st =
            match Sref.view r with
            | Sref.Root (Sref.Rglobal g) -> touch_global env st g
            | _ -> st
          in
          (st, (Some r, ty))
      | None ->
          emit env ~loc ~code:"ident" "unrecognized identifier '%s'" name;
          (st, (None, Ctype.int_)))
  | Ast.Earrow (b, fname) | Ast.Emember ({ e = Ast.Ederef b; _ }, fname) ->
      let st, bv = eval env st b in
      let st = arrow_base_checks env st bv ~fname ~loc in
      lval_field env st bv fname
  | Ast.Emember (b, fname) ->
      let st, bv = eval env st b in
      lval_field env st bv fname
  | Ast.Ederef b ->
      let st, bv = eval env st b in
      let st =
        match bv.v_ref with
        | Some r ->
            check_deref env st r ~how:"Dereference of"
              ~access:(Fmt.str "*%s" (Sref.to_string r))
              ~loc
        | None -> st
      in
      let ty =
        match Ctype.deref bv.v_ty with Some t -> t | None -> Ctype.int_
      in
      (st, (Option.map (fun r -> Sref.deref r) bv.v_ref, ty))
  | Ast.Eindex (b, idx) ->
      let st, bv = eval env st b in
      let st, _ = eval env st idx in
      let st =
        match bv.v_ref with
        | Some r ->
            check_deref env st r ~how:"Index of"
              ~access:(Fmt.str "%s[...]" (Sref.to_string r))
              ~loc
        | None -> st
      in
      let ty =
        match Ctype.deref bv.v_ty with Some t -> t | None -> Ctype.int_
      in
      let known = Sema.const_eval env.prog idx in
      let iopt =
        match known with
        | Some v when env.flags.Flags.indep_array_elements ->
            Some (Int64.to_int v)
        | _ -> None
      in
      (st, (Option.map (fun r -> Sref.index r iopt) bv.v_ref, ty))
  | Ast.Ecast (ty, b) ->
      let st, (r, _) = lval env st b in
      (st, (r, Sema.resolve_ty env.prog ~loc ty))
  | _ ->
      (* not an lvalue shape: evaluate for effect *)
      let st, v = eval env st e in
      (st, (v.v_ref, v.v_ty))

and lval_field env st (bv : value) fname : Store.t * (Sref.t option * Ctype.t)
    =
  let fty =
    let obj =
      match Ctype.deref bv.v_ty with Some t -> t | None -> bv.v_ty
    in
    match
      Option.bind (Ctype.su_tag obj) (fun tag -> Sema.find_field env.prog tag fname)
    with
    | Some fl -> fl.Sema.sf_ty
    | None -> Ctype.int_
  in
  match bv.v_ref with
  | None -> (st, (None, fty))
  | Some br ->
      let r = Sref.field br fname in
      (* materialize from the declaration so the assignment transfer can
         see the field's prior state (e.g. a live only field about to be
         overwritten) *)
      let st =
        if Store.mem st r then st
        else
          let annots = annots_of_ref env r in
          let s0 = entry_state env ~ty:fty ~annots ~loc:Loc.dummy in
          let s0 =
            match bv.v_def with
            | DSallocated | DSundefined -> (
                match Ctype.unroll fty with
                | Ctype.Carray _ ->
                    { s0 with Store.rs_def = DSallocated; rs_null = NSnotnull }
                | _ ->
                    {
                      s0 with
                      Store.rs_def = DSundefined;
                      rs_null =
                        (if Ctype.is_pointer fty then NSpossnull
                         else NSuntracked);
                    })
            | _ -> s0
          in
          Store.set st r s0
      in
      (st, (Some r, fty))

(* ------------------------------------------------------------------ *)
(* Confluence reporting                                                *)
(* ------------------------------------------------------------------ *)

and merge_reporting env ~loc a b : Store.t =
  let collected = ref [] in
  let st = Store.merge ~on_conflict:(fun c -> collected := c :: !collected) a b in
  (* shallow references first, so a base's conflict subsumes its children *)
  let depth_of = function
    | Store.Cdef (r, _, _) | Store.Calloc (r, _, _) -> Sref.depth r
  in
  List.iter
    (report_conflict env ~loc)
    (List.sort (fun c1 c2 -> compare (depth_of c1) (depth_of c2)) !collected);
  st

and report_conflict env ~loc (c : Store.conflict) : unit =
  (* inside the implementation of a killref function, the
     decrement-and-conditionally-free idiom legitimately releases the
     parameter on one path only: the killref annotation vouches for it *)
  let killref_param r =
    let idx =
      match Sref.root_of r with
      | Sref.Rparam (i, _) -> Some i
      | Sref.Rlocal n -> (
          match find_local env n with
          | Some { li_param = Some i; _ } -> Some i
          | _ -> None)
      | _ -> None
    in
    match idx with
    | Some i -> (
        match List.nth_opt env.fs.Sema.fs_params i with
        | Some p -> p.Sema.pr_annots.Sema.an.Annot.an_killref
        | None -> false)
    | None -> false
  in
  let excused =
    match c with
    | Store.Cdef (r, _, _) | Store.Calloc (r, _, _) -> killref_param r
  in
  if excused then ()
  else report_conflict_filtered env ~loc c

and report_conflict_filtered env ~loc (c : Store.conflict) : unit =
  (* one report per reference name and conflict kind per merge point:
     the local view and the external arg view of a parameter are distinct
     references with the same display name, and would otherwise produce
     duplicate messages *)
  let def_key r = Fmt.str "def:%a:%s" Loc.pp loc (Sref.to_string r) in
  let key =
    match c with
    | Store.Cdef (r, _, _) -> def_key r
    | Store.Calloc (r, sa, sb) ->
        Fmt.str "alloc:%a:%s:%s:%s" Loc.pp loc (Sref.to_string r)
          (allocstate_string sa.Store.rs_alloc)
          (allocstate_string sb.Store.rs_alloc)
  in
  (* a release conflict on a base reference subsumes conflicts on storage
     derived from it (children of dead storage are dead) *)
  let subsumed =
    match c with
    | Store.Cdef (r, _, _) ->
        let rec up r =
          match Sref.base r with
          | None -> false
          | Some b -> Hashtbl.mem env.conflict_memo (def_key b) || up b
        in
        up r
    | Store.Calloc _ -> false
  in
  if subsumed || Hashtbl.mem env.conflict_memo key then
    Hashtbl.replace env.conflict_memo key ()
  else begin
    Hashtbl.replace env.conflict_memo key ();
    report_conflict_always env ~loc c
  end

and report_conflict_always env ~loc (c : Store.conflict) : unit =
  match c with
  | Store.Cdef (r, sa, sb) ->
      let where st =
        match st.Store.rs_defloc with
        | Some l when not (Loc.is_dummy l) ->
            [ Diag.note ~loc:l
                (Fmt.str "Storage %s is released on one path" (Sref.to_string r));
            ]
        | _ -> []
      in
      let notes =
        if equal_defstate sa.Store.rs_def DSdead then where sa else where sb
      in
      emit env ~loc ~code:"branchstate" ~notes
        "Storage %s is released on one path but not on the other"
        (Sref.to_string r)
  | Store.Calloc (r, sa, sb) ->
      emit env ~loc ~code:"branchstate"
        "Storage %s has inconsistent states after branches: %s on one path, \
         %s on the other"
        (Sref.to_string r)
        (allocstate_string sa.Store.rs_alloc)
        (allocstate_string sb.Store.rs_alloc)

(* ------------------------------------------------------------------ *)
(* Guards                                                              *)
(* ------------------------------------------------------------------ *)

(** Evaluate a condition and return the pair (state when true, state when
    false), applying null-test refinements (paper: "Code can check that a
    possibly-null pointer is not null by using a simple comparison (e.g.,
    x != NULL) or a function call" with [truenull]/[falsenull]). *)
and split_cond env st (e : Ast.expr) : Store.t * Store.t =
  let loc = e.eloc in
  match e.e with
  | Ast.Eunary (Ast.Unot, inner) ->
      let t, f = split_cond env st inner in
      (f, t)
  | Ast.Ebinary (Ast.Bland, a, b) ->
      let ta, fa = split_cond env st a in
      let tb, fb = split_cond env ta b in
      (tb, merge_reporting env ~loc fa fb)
  | Ast.Ebinary (Ast.Blor, a, b) ->
      let ta, fa = split_cond env st a in
      let tb, fb = split_cond env fa b in
      (merge_reporting env ~loc ta tb, fb)
  | Ast.Ebinary (Ast.Beq, a, b) when Ast.is_null_constant b ->
      null_test env st a ~eq:true ~loc
  | Ast.Ebinary (Ast.Beq, a, b) when Ast.is_null_constant a ->
      null_test env st b ~eq:true ~loc
  | Ast.Ebinary (Ast.Bne, a, b) when Ast.is_null_constant b ->
      null_test env st a ~eq:false ~loc
  | Ast.Ebinary (Ast.Bne, a, b) when Ast.is_null_constant a ->
      null_test env st b ~eq:false ~loc
  | Ast.Ecall ({ e = Ast.Eident fname; _ }, [ arg ])
    when is_nulltest_fn env fname ->
      (* truenull: returns true iff argument is null;
         falsenull: returns true only if the argument is not null *)
      let truenull =
        match Hashtbl.find_opt env.prog.Sema.p_funcs fname with
        | Some fs -> fs.Sema.fs_ret_annots.Sema.an.Annot.an_truenull
        | None -> false
      in
      let st, v = eval env st arg in
      (match v.v_ref with
      | Some r when env.flags.Flags.guard_refinement ->
          if truenull then
            let t =
              allocmodel_resurrect env (Store.refine_null ~loc st r NSnull) r
            in
            let f = Store.refine_null ~loc st r NSnotnull in
            (t, f)
          else
            (* falsenull *)
            let t = Store.refine_null ~loc st r NSnotnull in
            (t, st)
      | _ -> (st, st))
  | _ -> (
      let st, v = eval env st e in
      (* a bare pointer used as a condition is a null test *)
      match v.v_ref with
      | Some r
        when Ctype.is_pointer v.v_ty && env.flags.Flags.guard_refinement ->
          let t = Store.refine_null ~loc st r NSnotnull in
          let f =
            allocmodel_resurrect env (Store.refine_null ~loc st r NSnull) r
          in
          (t, f)
      | _ -> (st, st))

and null_test env st (e : Ast.expr) ~eq ~loc : Store.t * Store.t =
  let st, v = eval env st e in
  if not env.flags.Flags.guard_refinement then (st, st)
  else
  match v.v_ref with
  | Some r when Ctype.is_pointer v.v_ty ->
      let null_side =
        allocmodel_resurrect env (Store.refine_null ~loc st r NSnull) r
      in
      let notnull_side = Store.refine_null ~loc st r NSnotnull in
      if eq then (null_side, notnull_side) else (notnull_side, null_side)
  | _ -> (st, st)

and is_nulltest_fn env fname =
  match Hashtbl.find_opt env.prog.Sema.p_funcs fname with
  | Some fs ->
      fs.Sema.fs_ret_annots.Sema.an.Annot.an_truenull
      || fs.Sema.fs_ret_annots.Sema.an.Annot.an_falsenull
  | None -> false

(* ------------------------------------------------------------------ *)
(* Assignment                                                          *)
(* ------------------------------------------------------------------ *)

and eval_assign env st (op : Ast.assignop) lhs rhs ~loc : Store.t * value =
  match op with
  | Some bop ->
      (* compound assignment: lhs is both used and defined; no transfer *)
      let st, lv = eval env st lhs in
      let st, _ = eval env st rhs in
      let st =
        match lv.v_ref with
        | Some r -> Store.set_def ~loc st r DSdefined
        | None -> st
      in
      let v =
        if Ctype.is_pointer lv.v_ty && (bop = Ast.Badd || bop = Ast.Bsub) then
          { lv with v_offset = true }
        else lv
      in
      (st, v)
  | None ->
      let st, rv = eval env st rhs in
      let st, (lref, lty) = lval env st lhs in
      let st =
        match lref with
        | Some r -> do_assign env st ~lhs_ref:r ~lhs_ty:lty ~rhs:rv ~loc
        | None -> st
      in
      (st, { rv with v_ty = lty; v_ref = lref })

(** The assignment transfer function.  Handles, in order: release-
    obligation loss on the overwritten reference; allocation-state transfer
    checking; strong update of the reference and its alias images; alias
    edge creation; definition-state propagation to base references. *)
and do_assign env st ~(lhs_ref : Sref.t) ~(lhs_ty : Ctype.t) ~(rhs : value)
    ~loc : Store.t =
  (* a modifies clause limits which externally visible objects the
     function may change (Section 2: "constraints on what may be modified
     ... by a called function") *)
  (match env.fs.Sema.fs_modifies with
  | Some allowed -> (
      match Sref.root_of lhs_ref with
      | Sref.Rglobal g when not (List.mem g allowed) ->
          emit env ~loc ~code:"modifies"
            "Undocumented modification of %s (not in the modifies clause of \
             %s)"
            (Sref.to_string lhs_ref) env.fs.Sema.fs_name
      | _ -> ())
  | None -> ());
  (* observer storage must not be modified by its holder (Appendix B) *)
  (if env.flags.Flags.check_alias then
     let base_observer =
       let rec up r =
         equal_allocstate (Store.get st r).Store.rs_alloc ASobserver
         || match Sref.base r with Some b -> up b | None -> false
       in
       match Sref.base lhs_ref with Some b -> up b | None -> false
     in
     if base_observer then
       emit env ~loc ~code:"modobserver"
         "Suspect modification of observer storage through %s"
         (Sref.to_string lhs_ref));
  match rhs.v_ref with
  | Some rr
    when rhs.v_offset
         && Sref.Set.mem lhs_ref (Store.alias_images st rr) ->
      (* p = p + n: same storage through an interior pointer; the
         obligation stays, but the reference can no longer release the
         block start *)
      Store.update_images st lhs_ref (fun s ->
          { s with Store.rs_offset = true })
  | _ ->
  let old = Store.get st lhs_ref in
  (if Sys.getenv_opt "OLCLINT_DEBUG3" <> None then
     Fmt.epr "[store before %a]@\n%a@\n" Loc.pp loc Store.pp st);
  (if Sys.getenv_opt "OLCLINT_DEBUG2" <> None then
     Fmt.epr "[assign %a] lhs=%s old(def=%s null=%s alloc=%s) rhs(def=%s alloc=%s)@\n"
       Loc.pp loc (Sref.to_string lhs_ref)
       (defstate_string old.Store.rs_def) (nullstate_string old.Store.rs_null)
       (allocstate_string old.Store.rs_alloc)
       (defstate_string rhs.v_def) (allocstate_string rhs.v_alloc));
  (* names of the assigned value, captured before the store is mutated
     (rebinding the lhs invalidates alias paths through it) *)
  let rhs_images_pre =
    match rhs.v_ref with
    | Some rr -> Store.alias_images st rr
    | None -> Sref.Set.empty
  in
  (* --- +allocmodel: realloc-result bookkeeping (prune / realloclost) --- *)
  allocmodel_assign env st ~rhs
    ~overwritten:(Sref.Set.add lhs_ref (Store.location_images st lhs_ref))
    ~loc;
  (* --- losing the last reference to only storage (Fig. 4) --- *)
  (if
     env.flags.Flags.check_alloc
     && (not env.flags.Flags.gc_mode)
     && has_obligation old.Store.rs_alloc
     && (match old.Store.rs_def with
        | DSdead | DSundefined | DSerror -> false
        | _ -> true)
     && not (equal_nullstate old.Store.rs_null NSnull)
   then
     let notes =
       match old.Store.rs_allocloc with
       | Some l when not (Loc.is_dummy l) ->
           [ Diag.note ~loc:l
               (Fmt.str "Storage %s becomes only" (Sref.to_string lhs_ref));
           ]
       | _ -> []
     in
     (if Sys.getenv_opt "OLCLINT_DEBUG" <> None then
        Fmt.epr "[dbg mustfree] lhs=%s def=%s null=%s alloc=%s@\n"
          (Sref.to_string lhs_ref)
          (defstate_string old.Store.rs_def)
          (nullstate_string old.Store.rs_null)
          (allocstate_string old.Store.rs_alloc));
     emit env ~loc ~code:"mustfree" ~notes
       "Only storage %s not released before assignment" (Sref.to_string lhs_ref));
  (* silence the overwritten object's other names so the same leak is not
     re-reported when the orphaned fresh object is scanned at exit *)
  let st =
    if
      has_obligation old.Store.rs_alloc
      && (match old.Store.rs_def with
         | DSdead | DSundefined | DSerror -> false
         | _ -> true)
      && not (equal_nullstate old.Store.rs_null NSnull)
    then Store.set_alloc ~loc st lhs_ref ASerror
    else st
  in
  (* --- allocation-state transfer --- *)
  let expected = annots_of_ref env lhs_ref in
  let lhs_expects_obligation =
    match expected.Annot.an_alloc with
    | Some Annot.Only | Some Annot.Owned -> true
    | _ -> Store.mem st lhs_ref && has_obligation old.Store.rs_alloc
  in
  let rhs_alloc_final, st =
    if not (Ctype.is_pointer lhs_ty) then (ASnone, st)
    else if lhs_expects_obligation then begin
      (* the assignment transfers the obligation to lhs *)
      (if
         env.flags.Flags.check_alloc
         && not (can_transfer_obligation rhs.v_alloc)
         && not (equal_nullstate rhs.v_null NSnull)
       then
         let rhs_desc =
           match rhs.v_ref with
           | Some r -> Fmt.str "%s storage %s" (String.capitalize_ascii (allocstate_string rhs.v_alloc)) (Sref.to_string r)
           | None -> Fmt.str "%s storage" (String.capitalize_ascii (allocstate_string rhs.v_alloc))
         in
         let notes =
           match rhs.v_ref with
           | Some r -> (
               match (Store.get st r).Store.rs_allocloc with
               | Some l when not (Loc.is_dummy l) ->
                   [ Diag.note ~loc:l
                       (Fmt.str "Storage %s becomes %s" (Sref.to_string r)
                          (allocstate_string rhs.v_alloc));
                   ]
               | _ -> [])
           | None -> []
         in
         emit env ~loc ~code:"onlytrans" ~notes
           "%s assigned to only storage %s" rhs_desc (Sref.to_string lhs_ref));
      (* "the allocation state of e becomes kept. This means its
         obligation to release storage has been satisfied, but it can
         still be safely used" (Section 5) *)
      let st =
        match rhs.v_ref with
        | Some r
          when (not rhs.v_addrof)
               && has_obligation (Store.get st r).Store.rs_alloc ->
            Store.set_alloc ~loc st r ASkept
        | _ -> st
      in
      (ASonly, st)
    end
    else
      (* no obligation expected: a sharing assignment.  The new reference
         joins the owners set; whether it may release the storage depends
         on where the obligation lives.  Storage owned by an external
         structure (a field, a parameter object, a global) keeps its
         obligation there, so the new reference is dependent; fresh or
         locally owned storage moves with the reference. *)
      let a =
        match rhs.v_alloc with
        | ASowned -> ASdependent
        | ASonly -> (
            match rhs.v_ref with
            | Some r -> (
                match Sref.view r with
                | Sref.Root (Sref.Rfresh _) | Sref.Root (Sref.Rlocal _) ->
                    ASonly
                | _ -> ASdependent)
            | None -> ASonly)
        | a -> a
      in
      (* assigning storage that carries a release obligation to an
         unqualified external reference loses the obligation — the
         eref_pool pattern of Section 6, fixed there by annotating the
         fields only *)
      let st =
        if
          env.flags.Flags.check_alloc
          && (not env.flags.Flags.gc_mode)
          && has_obligation rhs.v_alloc
          && Sref.is_external lhs_ref
          && (match Sref.root_of lhs_ref with
             | Sref.Rfresh _ -> false
             | _ -> true)
          && (match rhs.v_ref with
             | Some r -> (
                 match Sref.view r with
                 | Sref.Root (Sref.Rfresh _) -> true
                 | _ -> false)
             | _ -> false)
        then begin
          emit env ~loc ~code:"onlytrans"
            "Only storage assigned to unqualified external reference %s: \
             obligation to release storage is lost"
            (Sref.to_string lhs_ref);
          match rhs.v_ref with
          | Some r -> Store.set_alloc ~loc st r ASerror
          | None -> st
        end
        else st
      in
      (a, st)
  in
  (* --- strong update --- *)
  (* An assignment rewrites a LOCATION: it applies to every name of that
     location (l->next and argl->next when l aliases argl) but not to
     other names holding the old value (assigning to l does not change
     argl — the paper keeps l and argl distinct for exactly this
     reason). *)
  let images = Store.location_images st lhs_ref in
  (* unbind stale same-value edges of every name of the assigned location
     (symmetric): the location holds a new value now, and the names of the
     assigned VALUE were already captured in [rhs_images_pre]. *)
  let st =
    Sref.Set.fold
      (fun img st ->
        let old_aliases = (Store.get st img).Store.rs_aliases in
        let st =
          Sref.Set.fold
            (fun other st ->
              Store.update st other (fun s ->
                  {
                    s with
                    Store.rs_aliases =
                      Sref.Set.remove img s.Store.rs_aliases;
                  }))
            old_aliases st
        in
        Store.update st img (fun s ->
            { s with Store.rs_aliases = Sref.Set.empty }))
      images st
  in
  (* drop stale references derived from the overwritten location *)
  let st =
    Sref.Set.fold
      (fun img st ->
        List.fold_left
          (fun st (r, _) ->
            if Sref.derived_from ~outer:img r then Store.remove st r else st)
          st (Store.bindings st))
      images st
  in
  let def =
    match rhs.v_def with
    | DSdead | DSerror -> DSdefined (* already reported at use *)
    | d -> d
  in
  let null =
    if not (Ctype.is_pointer lhs_ty) then NSuntracked
    else
      match rhs.v_null with
      | NSuntracked -> if rhs.v_offset then NSnotnull else NSuntracked
      | n -> n
  in
  (* old alias edges on lhs are now stale: rebuild state from scratch *)
  let st =
    Sref.Set.fold
      (fun img st ->
        Store.set st img
          (Store.mk_refstate ~def ~null ~alloc:rhs_alloc_final
             ~offset:rhs.v_offset ~defloc:loc ~nullloc:loc
             ~allocloc:(match old.Store.rs_allocloc with Some l -> l | None -> loc)
             ()))
      images st
  in

  (* --- alias edges to the source reference (paper, Fig. 6, point 6) --- *)
  let st =
    match rhs.v_ref with
    | Some _
      when Ctype.is_pointer lhs_ty && (not rhs.v_addrof)
           && env.flags.Flags.alias_tracking ->
        let rhs_images =
          (* exclude names that are stale after the rebind: the lhs itself
             and anything derived from it (after l = l->next, the name
             "l->next" denotes a different object) *)
          Sref.Set.filter
            (fun r ->
              (not (Sref.Set.mem r images))
              && not
                   (Sref.Set.exists
                      (fun img ->
                        Sref.equal r img || Sref.derived_from ~outer:img r)
                      images))
            rhs_images_pre
        in
        Sref.Set.fold
          (fun li st ->
            Sref.Set.fold (fun ri st -> Store.add_alias st li ri) rhs_images st)
          images st
    | _ -> st
  in
  (* --- definition-state propagation to bases (Section 5) --- *)
  (* propagate along every updated image so the external views (argl, the
     globals) reflect the change too.  The images themselves are
     ALTERNATIVE names for the assigned location (one per path), so they
     are excluded: propagating one image's change into another would mix
     facts from different paths. *)
  let st =
    Sref.Set.fold
      (fun img st ->
        propagate_def_to_bases env st img ~assigned_def:def ~excl:images ~loc ())
      images st
  in
  st

(** After writing to a derived reference, adjust the definition states of
    its base references: writing into allocated storage makes the base
    partially defined, and the base's other fields are materialized as
    undefined so completion checking can find them (the
    [argl->next->next] pattern of Fig. 6).  The weakening is applied to
    every same-value name of the base (l and argl, Section 5: "this
    definition propagates to its base storage"). *)
and propagate_def_to_bases env st (r : Sref.t) ~(assigned_def : defstate)
    ?(excl = Sref.Set.empty) ~loc () : Store.t =
  match Sref.base r with
  | None -> st
  | Some b when Sref.Set.mem b excl ->
      (* the base is itself an image of the same assignment: it already
         carries the assigned state *)
      st
  | Some b ->
      let skip_field = match Sref.view r with Sref.Field (_, f) -> Some f | _ -> None in
      let weaken st b' =
        if Sref.Set.mem b' excl then st
        else
          let bs = Store.get st b' in
          match bs.Store.rs_def with
          | DSallocated ->
              (* contents were wholly undefined; now one child is written:
                 materialize the other children as undefined, then mark the
                 base partially defined *)
              let st = materialize_siblings env st b' ~skip_field ~loc in
              Store.update st b' (fun s ->
                  { s with Store.rs_def = DSpdefined; rs_defloc = Some loc })
          | DSdefined when not (equal_defstate assigned_def DSdefined) ->
              Store.update st b' (fun s ->
                  { s with Store.rs_def = DSpdefined; rs_defloc = Some loc })
          | _ -> st
      in
      let st =
        Sref.Set.fold
          (fun b' st -> weaken st b')
          (Store.value_images st b) st
      in
      propagate_def_to_bases env st b ~assigned_def ~excl ~loc ()

(** Create undefined entries for the unwritten fields of [b]'s pointee
    (type-driven), so exit-time completion scans can name them. *)
and materialize_siblings env st (b : Sref.t) ~skip_field ~loc : Store.t =
  match type_of_ref env b with
  | None -> st
  | Some bty ->
      let obj = match Ctype.deref bty with Some t -> t | None -> bty in
      List.fold_left
        (fun st (fl : Sema.field) ->
          let fr = Sref.field b fl.Sema.sf_name in
          if Some fl.Sema.sf_name = skip_field || Store.mem st fr then st
          else
            let def, null =
              match Ctype.unroll fl.Sema.sf_ty with
              | Ctype.Carray _ ->
                  (* embedded array storage exists; contents undefined *)
                  (DSallocated, NSnotnull)
              | t when Ctype.is_pointer t -> (DSundefined, NSpossnull)
              | _ -> (DSundefined, NSuntracked)
            in
            Store.set st fr
              (Store.mk_refstate ~def ~null ~alloc:ASnone ~defloc:loc ()))
        st (Sema.fields_of env.prog obj)

(* ------------------------------------------------------------------ *)
(* Completion scans                                                    *)
(* ------------------------------------------------------------------ *)

(** Find incompletely defined storage reachable from [r] ("An object is
    completely defined if all storage that may be reached from it is
    defined", Section 3).  Returns offending references, shallowest first:
    for [allocated] pointers the *contents* are undefined, so the report
    names the reachable fields (the [argl->next->next] pattern). *)
and incomplete_refs env st (r : Sref.t) : Sref.t list =
  let seen = ref Sref.Set.empty in
  let rec go r acc =
    if Sref.Set.mem r !seen || Sref.depth r > 6 then acc
    else begin
      seen := Sref.Set.add r !seen;
      let s = Store.get st r in
      let relaxed =
        match (annots_of_ref env r).Annot.an_def with
        | Some Annot.Out | Some Annot.Partial | Some Annot.RelDef -> true
        | _ -> false
      in
      match s.Store.rs_def with
      | _ when relaxed && not (Sref.equal (Sref.root (Sref.root_of r)) r) ->
          (* relaxed field/ref: checking is suppressed (reldef/partial) *)
          acc
      | DSdefined | DSdead | DSerror -> acc
      | DSundefined -> r :: acc
      | DSallocated ->
          (* contents undefined: name them by type *)
          let pointee =
            match type_of_ref env r with
            | Some ty -> (
                match Ctype.deref ty with
                | Some t -> Some t
                | None -> if Ctype.is_aggregate ty then Some ty else None)
            | None -> None
          in
          (match pointee with
          | Some obj when Ctype.is_aggregate obj -> (
              match Sema.fields_of env.prog obj with
              | [] -> Sref.deref r :: acc
              | fields -> (
                  let missing =
                    List.filter_map
                      (fun (fl : Sema.field) ->
                        if relaxed_field fl then None
                        else
                          let fr = Sref.field r fl.Sema.sf_name in
                          match Store.find st fr with
                          | Some
                              {
                                Store.rs_def = DSdefined | DSdead | DSerror;
                                _;
                              } ->
                              None
                          | _ -> Some fr)
                      fields
                  in
                  (* one representative is enough: the paper names a single
                     reference per incompletely defined object *)
                  match missing with m :: _ -> m :: acc | [] -> acc))
          | _ -> (
              match Store.find st (Sref.deref r) with
              | Some { Store.rs_def = DSdefined | DSdead | DSerror; _ } -> acc
              | _ -> Sref.deref r :: acc))
      | DSpdefined ->
          (* recurse into tracked children, honouring relaxed annotations *)
          List.fold_left
            (fun acc (child, _) ->
              match Sref.base child with
              | Some b when Sref.equal b r ->
                  let an = annots_of_ref env child in
                  (match an.Annot.an_def with
                  | Some Annot.Out | Some Annot.Partial | Some Annot.RelDef ->
                      acc
                  | _ -> go child acc)
              | _ -> acc)
            acc (Store.bindings st)
    end
  and relaxed_field (fl : Sema.field) =
    match fl.Sema.sf_annots.Sema.an.Annot.an_def with
    | Some Annot.Out | Some Annot.Partial | Some Annot.RelDef -> true
    | _ -> false
  in
  List.rev (go r [])

(** Null-completion: tracked references reachable from [r] whose state is
    (possibly) null but whose declared annotations say non-null (the
    "Null storage c->vals derivable from return value" anomaly). *)
and null_derivable env st (r : Sref.t) : (Sref.t * Store.refstate) list =
  List.filter_map
    (fun (child, (s : Store.refstate)) ->
      if
        Sref.derived_from ~outer:r child
        && (match s.Store.rs_def with
           | DSundefined | DSdead | DSerror -> false
           | _ -> true)
        && (match s.Store.rs_null with NSnull | NSpossnull -> true | _ -> false)
        &&
        let annots = annots_of_ref env child in
        (match annots.Annot.an_null with
        | Some Annot.Null | Some Annot.RelNull -> false
        | _ -> true)
      then Some (child, s)
      else None)
    (Store.bindings st)

(* ------------------------------------------------------------------ *)
(* Function calls                                                      *)
(* ------------------------------------------------------------------ *)

and eval_call env st (fexpr : Ast.expr) (args : Ast.expr list) ~loc :
    Store.t * value =
  match fexpr.e with
  | Ast.Eident name
    when find_local env name = None
         && Hashtbl.mem env.prog.Sema.p_funcs name ->
      let fs = Hashtbl.find env.prog.Sema.p_funcs name in
      call_known env st fs args ~loc
  | _ ->
      (* unknown callee / function pointer: evaluate everything, assume a
         defined, unmanaged result *)
      let st, _ = eval env st fexpr in
      let st =
        List.fold_left (fun st a -> fst (eval env st a)) st args
      in
      (st, { (unit_value Ctype.int_) with v_alloc = ASdependent })

and call_known env st (fs : Sema.funsig) (args : Ast.expr list) ~loc :
    Store.t * value =
  let fname = fs.Sema.fs_name in
  (* evaluate arguments left to right *)
  let st, argvals =
    List.fold_left
      (fun (st, acc) a ->
        let st, v = eval env st a in
        (st, (v, a.Ast.eloc) :: acc))
      (st, []) args
  in
  let argvals = List.rev argvals in
  let nparams = List.length fs.Sema.fs_params in
  if
    List.length argvals < nparams
    || (List.length argvals > nparams && not fs.Sema.fs_varargs)
  then
    emit env ~loc ~code:"call"
      "function %s called with %d arguments (declared with %d)" fname
      (List.length argvals) nparams;
  let paired =
    let rec zip ps avs =
      match (ps, avs) with
      | p :: ps', av :: avs' -> (Some p, av) :: zip ps' avs'
      | [], av :: avs' -> (None, av) :: zip [] avs'
      | _, [] -> []
    in
    zip fs.Sema.fs_params argvals
  in
  (* +allocmodel: capture the pre-consumption states of a modeled
     realloc's first argument — on the NULL-result branch those names
     are resurrected (the old block is still allocated) *)
  let realloc_capture =
    if env.flags.Flags.alloc_model && Allocmodel.is_realloc fname then
      match argvals with
      | (({ v_ref = Some r; _ } : value) as v, _) :: _
        when has_obligation v.v_alloc
             && not (equal_nullstate v.v_null NSnull) ->
          let imgs = Sref.Set.add r (Store.alias_images st r) in
          Some
            (r, List.map (fun i -> (i, Store.get st i)) (Sref.Set.elements imgs))
      | _ -> None
    else None
  in
  (* per-argument interface checks and transfers *)
  let callee_sum = summary_of_callee env fs in
  let st =
    fst
      (List.fold_left
         (fun (st, i) (popt, ((v : value), aloc)) ->
           match popt with
           | None ->
               (* varargs argument: must be completely defined *)
               (check_arg_complete env st v ~fname ~aloc, i + 1)
           | Some (p : Sema.param) ->
               let sum_effect =
                 match callee_sum with
                 | Some sm
                   when slot_unannotated p.Sema.pr_annots
                        && i < Array.length sm.Summary.sm_params ->
                     Some sm.Summary.sm_params.(i)
                 | _ -> None
               in
               (check_arg env st fs p v ~sum_effect ~fname ~aloc, i + 1))
         (st, 0) paired)
  in
  (* unique parameters: may not share storage with any other parameter or
     accessible global (the strcpy anomaly, Section 6) *)
  let st =
    if env.flags.Flags.check_alias then
      check_unique env st fs paired ~fname ~loc
    else st
  in
  (* globals used by the callee *)
  let st = check_call_globals env st fs ~loc in
  (* result *)
  let returned_arg =
    let rec find ps avs =
      match (ps, avs) with
      | (p : Sema.param) :: _, (av, _) :: _
        when p.Sema.pr_annots.Sema.an.Annot.an_returned ->
          Some av
      | _ :: ps', _ :: avs' -> find ps' avs'
      | _ -> None
    in
    find fs.Sema.fs_params argvals
  in
  (* [+xproc]: a summary-proven alias result behaves like [returned] *)
  let returned_arg =
    match returned_arg with
    | Some _ -> returned_arg
    | None -> (
        match callee_sum with
        | Some sm
          when slot_unannotated fs.Sema.fs_ret_annots
               && Ctype.is_pointer fs.Sema.fs_ret -> (
            match sm.Summary.sm_ret with
            | Summary.Ralias k ->
                Telemetry.Counter.tick Telemetry.c_summary_consults;
                Option.map fst (List.nth_opt argvals k)
            | _ -> None)
        | _ -> None)
  in
  let ret_an = fs.Sema.fs_ret_annots.Sema.an in
  let st = if ret_an.Annot.an_exits then Store.unreachable st else st in
  match returned_arg with
  | Some av -> (st, { av with v_ty = fs.Sema.fs_ret })
  | None ->
      let ty = fs.Sema.fs_ret in
      if not (Ctype.is_pointer ty) then (st, unit_value ty)
      else
        let null =
          match ret_an.Annot.an_null with
          | Some Annot.Null -> NSpossnull
          | Some Annot.RelNull -> NSrel
          | _ -> NSnotnull
        in
        let def =
          match ret_an.Annot.an_def with
          | Some Annot.Out -> DSallocated
          | Some Annot.Partial -> DSpdefined
          | _ -> DSdefined
        in
        let def =
          (* the allocator table is authoritative for modeled fresh
             allocations (calloc's result is zeroed, hence defined) *)
          if env.flags.Flags.alloc_model then
            Option.value (Allocmodel.result_def fname) ~default:def
          else def
        in
        let alloc =
          match ret_an.Annot.an_alloc with
          | Some Annot.Only -> ASonly
          | Some Annot.Shared -> ASshared
          | Some Annot.Dependent -> ASdependent
          | Some Annot.Owned -> ASowned
          | _ -> (
              if ret_an.Annot.an_newref then ASrefcounted
              else
                match ret_an.Annot.an_expose with
                | Some Annot.Observer -> ASobserver
                | Some Annot.Exposed -> ASexposed
                | None -> ASdependent)
        in
        if has_obligation alloc then begin
          (* fresh storage: track it so an unconsumed result is a leak *)
          let id = fresh_id env in
          let r = Sref.root (Sref.Rfresh (id, fname)) in
          (match realloc_capture with
          | Some (old_r, saved) ->
              Hashtbl.replace env.realloc_sources id
                { rsrc_old = old_r; rsrc_saved = saved; rsrc_loc = loc }
          | None -> ());
          let st =
            Store.set st r
              (Store.mk_refstate ~def ~null ~alloc ~defloc:loc ~nullloc:loc
                 ~allocloc:loc ())
          in
          (st, value_of_state ty r (Store.get st r))
        end
        else
          ( st,
            {
              v_ty = ty;
              v_ref = None;
              v_def = def;
              v_null = null;
              v_alloc = alloc;
              v_offset = false;
              v_addrof = false;
            } )

and check_arg_complete env st (v : value) ~fname ~aloc : Store.t =
  if not env.flags.Flags.check_def then st
  else
    match v.v_ref with
    | Some r ->
        let missing = incomplete_refs env st r in
        List.fold_left
          (fun st m ->
            emit env ~loc:aloc ~code:"compdef"
              "Storage %s reachable from actual parameter is not completely \
               defined in call to %s"
              (Sref.to_string m) fname;
            Store.set_def ~loc:aloc st m DSerror)
          st missing
    | None -> st

and check_arg env st (fs : Sema.funsig) (p : Sema.param) (v : value)
    ~sum_effect ~fname ~aloc : Store.t =
  let an = p.Sema.pr_annots.Sema.an in
  (* --- null --- *)
  let st =
    if
      env.flags.Flags.check_null
      && Ctype.is_pointer p.Sema.pr_ty
      && (match an.Annot.an_null with
         | Some Annot.Null | Some Annot.RelNull -> false
         | _ -> true)
      && (match v.v_null with NSnull | NSpossnull -> true | _ -> false)
    then begin
      let desc =
        match v.v_ref with
        | Some r -> Sref.to_string r
        | None -> "<expression>"
      in
      let notes =
        match v.v_ref with
        | Some r -> (
            match (Store.get st r).Store.rs_nullloc with
            | Some l when not (Loc.is_dummy l) ->
                [ Diag.note ~loc:l (Fmt.str "Storage %s may become null" desc) ]
            | _ -> [])
        | None -> []
      in
      emit env ~loc:aloc ~code:"nullpass" ~notes
        "Possibly null storage %s passed as non-null param %s of %s" desc
        p.Sema.pr_name fname;
      match v.v_ref with
      | Some r -> Store.refine_null ~loc:aloc st r NSnotnull
      | None -> st
    end
    else st
  in
  (* --- definition --- *)
  let st =
    match an.Annot.an_def with
    | Some Annot.Out | Some Annot.Partial | Some Annot.RelDef -> st
    | _
      when env.flags.Flags.alloc_model
           && Allocmodel.is_realloc fname
           && Ctype.is_pointer p.Sema.pr_ty ->
        (* realloc preserves whatever was defined: a partially defined
           block (fresh from malloc) is a legitimate argument *)
        st
    | _ -> check_arg_complete env st v ~fname ~aloc
  in
  (* --- allocation transfer --- *)
  let st =
    match an.Annot.an_alloc with
    | Some Annot.Only | Some Annot.Keep | Some Annot.Owned ->
        check_obligation_transfer env st fs p v ~fname ~aloc
    | _ when an.Annot.an_killref ->
        (* a killref parameter consumes one reference; the object itself
           stays usable (the count may still be positive) *)
        if
          env.flags.Flags.check_alloc
          && (not (equal_nullstate v.v_null NSnull))
          && not (equal_allocstate v.v_alloc ASrefcounted)
        then begin
          let desc =
            match v.v_ref with
            | Some r -> Sref.to_string r
            | None -> "<expression>"
          in
          emit env ~loc:aloc ~code:"refcount"
            "%s storage %s passed as killref param %s of %s (no live \
             reference to consume)"
            (String.capitalize_ascii (allocstate_string v.v_alloc))
            desc p.Sema.pr_name fname;
          match v.v_ref with
          | Some r -> Store.set_alloc ~loc:aloc st r ASerror
          | None -> st
        end
        else begin
          match v.v_ref with
          | Some r -> Store.set_alloc ~loc:aloc st r ASkept
          | None -> st
        end
    | _ -> st
  in
  (* --- out: after the call the referenced storage is defined --- *)
  let st =
    match (an.Annot.an_def, v.v_ref) with
    | Some Annot.Out, Some r
      when not (match an.Annot.an_alloc with Some Annot.Only -> true | _ -> false)
      ->
        Store.set_def ~loc:aloc st r DSdefined
    | _ -> st
  in
  (* --- [+xproc]: summary-driven transfer for an unannotated slot --- *)
  let st =
    match (sum_effect, v.v_ref) with
    | Some pe, Some r
      when (not v.v_addrof) && Ctype.is_pointer p.Sema.pr_ty ->
        Telemetry.Counter.tick Telemetry.c_summary_consults;
        let released =
          match pe.Summary.pe_rel with
          | Summary.Prel | Summary.Prelnull | Summary.Pcond -> true
          | Summary.Pnone | Summary.Ptop -> false
        in
        if released then
          (* the callee may release the argument on some path: the
             caller's reference must be treated as dead afterwards (a
             later use is [usereleased], a later free a double free) *)
          if equal_nullstate v.v_null NSnull then st
          else Store.set_def ~loc:aloc st r DSdead
        else begin
          let st =
            if pe.Summary.pe_escape then begin
              (* the callee stored the reference: the storage is now
                 shared with wherever it was stashed — the caller no
                 longer holds the sole reference, so releasing it later
                 leaves the stored copy dangling *)
              env.escaped_args <-
                Sref.Set.add r
                  (Sref.Set.union (Store.alias_images st r) env.escaped_args);
              Store.set_alloc ~loc:aloc st r ASshared
            end
            else st
          in
          if pe.Summary.pe_out then
            (* every normal path writes through the pointer *)
            Store.set_def ~loc:aloc st r DSdefined
          else st
        end
    | _ -> st
  in
  st

(** Transfer of a release obligation into an [only]/[keep]/[owned]
    parameter, including the special checks for [free]-like interfaces. *)
and check_obligation_transfer env st (fs : Sema.funsig) (p : Sema.param)
    (v : value) ~fname ~aloc : Store.t =
  ignore fs;
  let an = p.Sema.pr_annots.Sema.an in
  let is_free_like =
    (* an out only void * parameter can only sensibly deallocate its
       argument (paper, footnote 5) *)
    (match an.Annot.an_def with Some Annot.Out -> true | _ -> false)
    && match Ctype.unroll p.Sema.pr_ty with
       | Ctype.Cptr Ctype.Cvoid -> true
       | _ -> false
  in
  (* null actual passed to a null-annotated only param is a no-op *)
  if equal_nullstate v.v_null NSnull then st
  else begin
    let gc_leaks_ok = env.flags.Flags.gc_mode in
    let st =
      if not env.flags.Flags.check_alloc then st
      else if v.v_offset && is_free_like then begin
        (* freeing an offset pointer: only detected with +freeoffset
           (paper, footnote 8: a post-paper improvement) *)
        if env.flags.Flags.free_offset then
          emit env ~loc:aloc ~code:"freeoffset"
            "Offset pointer passed as only param %s of %s: storage cannot \
             be released through an interior pointer"
            p.Sema.pr_name fname;
        st
      end
      else if
        equal_allocstate v.v_alloc ASstatic
        || (match v.v_ref with
           | Some r -> (
               match Sref.root_of r with Sref.Rstatic _ -> true | _ -> false)
           | None -> false)
      then begin
        (* freeing static storage: +freestatic (paper, footnote 8) *)
        if env.flags.Flags.free_static && is_free_like then
          emit env ~loc:aloc ~code:"freestatic"
            "Static storage passed as only param %s of %s" p.Sema.pr_name
            fname;
        st
      end
      else if
        env.flags.Flags.xproc
        && (match v.v_ref with
           | Some r -> ref_escaped env st r
           | None -> false)
      then begin
        (* [+xproc]: a summarized callee stored this reference away; the
           release leaves that stored copy dangling *)
        let desc =
          match v.v_ref with Some r -> Sref.to_string r | None -> "<expression>"
        in
        emit env ~loc:aloc ~code:"escapefree"
          "Storage %s passed as only param %s of %s but a reference escaped \
           through an earlier call (the stored reference would dangle)"
          desc p.Sema.pr_name fname;
        match v.v_ref with
        | Some r -> Store.set_alloc ~loc:aloc st r ASerror
        | None -> st
      end
      else if not (can_transfer_obligation v.v_alloc) && not gc_leaks_ok then begin
        let implicitly =
          match v.v_ref with
          | Some r -> (
              let an = annots_of_ref env r in
              match Sref.view r with
              | Sref.Root (Sref.Rlocal n) -> (
                  match find_local env n with
                  | Some { li_param = Some i; _ } -> (
                      match List.nth_opt env.fs.fs_params i with
                      | Some pp -> pp.Sema.pr_annots.Sema.alloc_implicit
                      | None -> false)
                  | _ -> false)
              | _ -> ignore an; false)
          | None -> false
        in
        let desc =
          match v.v_ref with Some r -> Sref.to_string r | None -> "<expression>"
        in
        emit env ~loc:aloc ~code:"onlytrans"
          "%s%s storage %s passed as only param %s of %s"
          (if implicitly then "Implicitly " else "")
          (if implicitly then allocstate_string v.v_alloc
           else String.capitalize_ascii (allocstate_string v.v_alloc))
          desc p.Sema.pr_name fname;
        match v.v_ref with
        | Some r -> Store.set_alloc ~loc:aloc st r ASerror
        | None -> st
      end
      else st
    in
    (* completely-destroyed check (footnote 5): storage reachable from a
       freed object must not hold live unshared objects *)
    let st =
      if is_free_like && env.flags.Flags.check_alloc && not gc_leaks_ok then
        match v.v_ref with
        | Some r ->
            (* tracked descendants holding obligations... *)
            let st =
              List.fold_left
                (fun st (child, (s : Store.refstate)) ->
                  if
                    Sref.derived_from ~outer:r child
                    && has_obligation s.Store.rs_alloc
                    && not (equal_defstate s.Store.rs_def DSdead)
                    && not (equal_nullstate s.Store.rs_null NSnull)
                  then begin
                    emit env ~loc:aloc ~code:"compdestroy"
                      "Only storage %s derivable from parameter is not \
                       released by call to %s"
                      (Sref.to_string child) fname;
                    Store.set_alloc ~loc:aloc st child ASerror
                  end
                  else st)
                st (Store.bindings st)
            in
            (* ...and untouched only fields, which default to live (the
               object arrived completely defined) *)
            let obj =
              Option.bind (type_of_ref env r) Ctype.deref
            in
            let fields =
              match obj with
              | Some t -> Sema.fields_of env.prog t
              | None -> []
            in
            List.fold_left
              (fun st (fl : Sema.field) ->
                let fr = Sref.field r fl.Sema.sf_name in
                if
                  (not (Store.mem st fr))
                  && (match fl.Sema.sf_annots.Sema.an.Annot.an_alloc with
                     | Some Annot.Only | Some Annot.Owned -> true
                     | _ -> false)
                  && fl.Sema.sf_annots.Sema.an.Annot.an_null = None
                then begin
                  emit env ~loc:aloc ~code:"compdestroy"
                    "Only storage %s derivable from parameter is not \
                     released by call to %s"
                    (Sref.to_string fr) fname;
                  Store.set st fr
                    (Store.mk_refstate ~def:DSdefined ~null:NSnotnull
                       ~alloc:ASerror ())
                end
                else st)
              st fields
        | None -> st
      else st
    in
    (* the transfer itself *)
    match v.v_ref with
    | Some _ when v.v_addrof -> st
    | Some r -> (
        match p.Sema.pr_annots.Sema.an.Annot.an_alloc with
        | Some Annot.Only ->
            (* original reference becomes a dead pointer *)
            (if Sys.getenv_opt "OLCLINT_DEBUG4" <> None then
               Fmt.epr "[free-transfer %a] r=%s images={%s}@\nstore:@\n%a@\n" Loc.pp aloc
                 (Sref.to_string r)
                 (String.concat ", "
                    (List.map Sref.to_string
                       (Sref.Set.elements (Store.alias_images st r))))
                 Store.pp st);
            Store.set_def ~loc:aloc st r DSdead
        | Some Annot.Keep ->
            (* obligation satisfied, reference still usable *)
            Store.set_alloc ~loc:aloc st r ASkept
        | Some Annot.Owned -> Store.set_alloc ~loc:aloc st r ASdependent
        | _ -> st)
    | None -> st
  end

(** Unique parameters: "May not share storage with any other function
    parameter or accessible global." *)
and check_unique env st (fs : Sema.funsig)
    (paired : (Sema.param option * (value * Loc.t)) list) ~fname ~loc :
    Store.t =
  let shareable (v : value) =
    (* could this argument's storage be externally shared?  Fresh or
       unshared (only) storage cannot. *)
    match v.v_alloc with
    | ASonly | ASowned -> false
    | _ -> (
        match v.v_ref with
        | Some r ->
            Sref.Set.exists
              (fun img ->
                match Sref.root_of img with
                | Sref.Rparam (i, _) -> (
                    match List.nth_opt env.fs.fs_params i with
                    | Some p ->
                        let a = p.Sema.pr_annots.Sema.an in
                        (not a.Annot.an_unique)
                        && a.Annot.an_alloc <> Some Annot.Only
                    | None -> true)
                | Sref.Rglobal _ -> true
                | _ -> false)
              (Store.alias_images st r)
        | None -> false)
  in
  let rec positions i = function
    | [] -> []
    | (p, av) :: rest -> (i, p, av) :: positions (i + 1) rest
  in
  let pos = positions 1 paired in
  List.fold_left
    (fun st (i, popt, ((v : value), aloc)) ->
      match popt with
      | Some (p : Sema.param) when p.Sema.pr_annots.Sema.an.Annot.an_unique ->
          List.fold_left
            (fun st (j, qopt, ((w : value), _)) ->
              ignore qopt;
              if
                i <> j
                && Ctype.is_pointer v.v_ty
                && Ctype.is_pointer w.v_ty
                && (directly_alias st v w
                   || (shareable v && shareable w))
              then begin
                let d (x : value) =
                  match x.v_ref with
                  | Some r -> Sref.to_string r
                  | None -> "<expression>"
                in
                emit env ~loc:aloc ~code:"aliasunique"
                  "Parameter %d (%s) to function %s is declared unique but \
                   may be aliased externally by parameter %d (%s)"
                  i (d v) fname j (d w);
                st
              end
              else st)
            st pos
      | _ -> (ignore fs; ignore loc; st))
    st pos

and directly_alias st (v : value) (w : value) =
  match (v.v_ref, w.v_ref) with
  | Some a, Some b ->
      not
        (Sref.Set.is_empty
           (Sref.Set.inter (Store.alias_images st a) (Store.alias_images st b)))
  | _ -> false

(** Call-site checking of the callee's globals list: entry constraints
    hold before the call; after the call the globals are assumed to satisfy
    their declared annotations. *)
and check_call_globals env st (fs : Sema.funsig) ~loc : Store.t =
  List.fold_left
    (fun st (gname, (ga : Annot.set)) ->
      match Hashtbl.find_opt env.prog.Sema.p_globals gname with
      | None -> st
      | Some gv ->
          let st = touch_global env st gname in
          let r = Sref.root (Sref.Rglobal gname) in
          let s = Store.get st r in
          let declared = gv.Sema.gv_annots.Sema.an in
          (* null state must satisfy the declaration unless undef *)
          (if
             env.flags.Flags.check_null
             && (not ga.Annot.an_undef)
             && Ctype.is_pointer gv.Sema.gv_ty
             && (match declared.Annot.an_null with
                | Some Annot.Null | Some Annot.RelNull -> false
                | _ -> true)
             && match s.Store.rs_null with
                | NSnull | NSpossnull -> true
                | _ -> false
           then
             let notes =
               match s.Store.rs_nullloc with
               | Some l when not (Loc.is_dummy l) ->
                   [ Diag.note ~loc:l
                       (Fmt.str "Storage %s may become null" gname);
                   ]
               | _ -> []
             in
             emit env ~loc ~code:"globnull" ~notes
               "Non-null global %s may reference null storage at call to %s"
               gname fs.Sema.fs_name);
          (* must be defined unless the callee marks it undef *)
          let st =
            if
              env.flags.Flags.check_def && not ga.Annot.an_undef
            then
              List.fold_left
                (fun st m ->
                  emit env ~loc ~code:"compdef"
                    "Global %s is not completely defined at call to %s (%s is \
                     undefined)"
                    gname fs.Sema.fs_name (Sref.to_string m);
                  Store.set_def ~loc st m DSerror)
                st
                (incomplete_refs env st r)
            else st
          in
          (* after the call: assume declared state; killed globals die *)
          let after =
            if ga.Annot.an_killed then
              { (Store.get st r) with Store.rs_def = DSdead; rs_defloc = Some loc }
            else
              entry_state env ~ty:gv.Sema.gv_ty ~annots:declared ~loc
          in
          (* drop stale derived refs *)
          let st =
            List.fold_left
              (fun st (child, _) ->
                if Sref.derived_from ~outer:r child then Store.remove st child
                else st)
              st (Store.bindings st)
          in
          Store.set st r after)
    st fs.Sema.fs_globals

(* ------------------------------------------------------------------ *)
(* Leak checking                                                       *)
(* ------------------------------------------------------------------ *)

(** Does any alias image of [r] escape to the caller (parameter object,
    global, or the return value)?  Fresh storage reachable only from
    locals does not escape. *)
let escapes ?(ignoring : Sref.root option) env st (r : Sref.t) : bool =
  ignore env;
  Sref.Set.exists
    (fun img ->
      match Sref.root_of img with
      | root when Some root = ignoring -> false
      | Sref.Rparam _ | Sref.Rglobal _ | Sref.Rret -> true
      | _ -> false)
    (Store.alias_images st r)

(** Report storage whose release obligation is lost when [r] goes out of
    scope or the function returns. *)
let leak_check_ref ?ignoring env st (r : Sref.t) ~(what : string) ~loc :
    Store.t =
  let s = Store.get st r in
  if
    env.flags.Flags.check_alloc
    && (not env.flags.Flags.gc_mode)
    && has_obligation s.Store.rs_alloc
    && (match s.Store.rs_def with
       | DSdead | DSundefined | DSerror -> false
       | _ -> true)
    && (not (equal_nullstate s.Store.rs_null NSnull))
    && not (escapes ?ignoring env st r)
  then begin
    let notes =
      match s.Store.rs_allocloc with
      | Some l when not (Loc.is_dummy l) ->
          [ Diag.note ~loc:l
              (Fmt.str "Storage %s becomes only" (Sref.to_string r)) ]
      | _ -> []
    in
    emit env ~loc ~code:"mustfree" ~notes
      "Only storage %s not released before %s" (Sref.to_string r) what;
    (* silence the whole alias group *)
    Store.set_alloc ~loc st r ASerror
  end
  else st

(** Leak-check every local in [vars] (a scope being exited). *)
let leak_check_scope env st (vars : (string * localinfo) list) ~loc : Store.t =
  List.fold_left
    (fun st (name, _) ->
      leak_check_ref env st (Sref.root (Sref.Rlocal name)) ~what:"scope exit"
        ~loc)
    st vars

(* ------------------------------------------------------------------ *)
(* Function exit checks                                                *)
(* ------------------------------------------------------------------ *)

(** Check all interface constraints at a return point (paper, Section 2:
    "At all return points, the function must satisfy the constraints
    implied by the annotations on its return value, parameters, and the
    global variables it uses"). *)
let check_exit env st ~(ret : value option) ~loc : Store.t =
  (* summary observation first: raw states, before exit checks rewrite
     them to error markers *)
  (match env.exit_obs with
  | Some obs ->
      let xi_ret =
        match ret with
        | Some v when Ctype.is_pointer env.fs.Sema.fs_ret ->
            Some (v.v_null, v.v_alloc)
        | _ -> None
      in
      let xi_params =
        Array.of_list
          (List.mapi
             (fun i (p : Sema.param) ->
               let s =
                 Store.get st (Sref.root (Sref.Rparam (i, p.Sema.pr_name)))
               in
               (s.Store.rs_def, s.Store.rs_alloc))
             env.fs.Sema.fs_params)
      in
      obs { xi_loc = loc; xi_ret; xi_params }
  | None -> ());
  if Sys.getenv_opt "OLCLINT_DEBUG" <> None then
    Fmt.epr "--- store at exit of %s (%a) ---@
%a@
" env.fs.Sema.fs_name
      Cfront.Loc.pp loc Store.pp st;
  let fs = env.fs in
  let ret_an = fs.Sema.fs_ret_annots.Sema.an in
  (* ---- return value ---- *)
  let st =
    match ret with
    | None -> st
    | Some v ->
        (* null *)
        (if
           env.flags.Flags.check_null
           && Ctype.is_pointer fs.Sema.fs_ret
           && (match ret_an.Annot.an_null with
              | Some Annot.Null | Some Annot.RelNull -> false
              | _ -> true)
           && match v.v_null with NSnull | NSpossnull -> true | _ -> false
         then
           let desc =
             match v.v_ref with Some r -> Sref.to_string r | None -> "<expression>"
           in
           let notes =
             match v.v_ref with
             | Some r -> (
                 match (Store.get st r).Store.rs_nullloc with
                 | Some l when not (Loc.is_dummy l) ->
                     [ Diag.note ~loc:l
                         (Fmt.str "Storage %s may become null" desc) ]
                 | _ -> [])
             | None -> []
           in
           emit env ~loc ~code:"nullret" ~notes
             "Possibly null storage %s returned as non-null result" desc);
        (* null-completion on the returned object *)
        let st =
          match v.v_ref with
          | Some r when env.flags.Flags.check_null ->
              List.fold_left
                (fun st (child, (s : Store.refstate)) ->
                  let notes =
                    match s.Store.rs_nullloc with
                    | Some l when not (Loc.is_dummy l) ->
                        [ Diag.note ~loc:l
                            (Fmt.str "Storage %s becomes null"
                               (Sref.to_string child));
                        ]
                    | _ -> []
                  in
                  emit env ~loc ~code:"nullderive" ~notes
                    "Null storage %s derivable from return value: %s"
                    (Sref.to_string child) (Sref.to_string r);
                  Store.refine_null ~loc st child NSnotnull)
                st (null_derivable env st r)
          | _ -> st
        in
        (* definition-completeness of the returned object *)
        let st =
          match ret_an.Annot.an_def with
          | Some Annot.Out | Some Annot.Partial | Some Annot.RelDef -> st
          | _ -> (
              match v.v_ref with
              | Some r when env.flags.Flags.check_def ->
                  List.fold_left
                    (fun st m ->
                      emit env ~loc ~code:"compdef"
                        "Returned storage is not completely defined: %s is \
                         undefined"
                        (Sref.to_string m);
                      Store.set_def ~loc st m DSerror)
                    st (incomplete_refs env st r)
              | _ -> st)
        in
        (* newref balance: the returned value must carry a reference the
           caller may own.  Borrowed (tempref) and transferred (killref,
           fresh) references qualify — the count arithmetic is the
           programmer's — but observer/exposed/static/shared/dependent
           storage has no reference to give out. *)
        (if
           env.flags.Flags.check_alloc
           && ret_an.Annot.an_newref
           && Ctype.is_pointer fs.Sema.fs_ret
           && (not (equal_nullstate v.v_null NSnull))
           && (match v.v_alloc with
              | ASobserver | ASexposed | ASstatic | AStemp | ASshared
              | ASdependent ->
                  true
              | _ -> (
                  match v.v_ref with
                  | Some r -> (
                      match Sref.root_of r with
                      | Sref.Rstatic _ -> true
                      | _ -> false)
                  | None -> false))
         then
           let desc =
             match v.v_ref with
             | Some r -> Sref.to_string r
             | None -> "<expression>"
           in
           emit env ~loc ~code:"refcount"
             "Function %s returns %s storage %s as a newref result: no new \
              reference is created (reference count balance)"
             fs.Sema.fs_name
             (allocstate_string v.v_alloc)
             desc);
        (* a borrowed (tempref) parameter reference must not outlive the
           call through the result unless the function vouches for a new
           reference (newref) *)
        (if
           env.flags.Flags.check_alloc
           && (not ret_an.Annot.an_newref)
           && Ctype.is_pointer fs.Sema.fs_ret
         then
           match v.v_ref with
           | Some r ->
               let imgs = Sref.Set.add r (Store.alias_images st r) in
               List.iteri
                 (fun i (p : Sema.param) ->
                   if
                     p.Sema.pr_annots.Sema.an.Annot.an_tempref
                     && Sref.Set.exists
                          (fun img ->
                            match Sref.root_of img with
                            | Sref.Rparam (j, _) -> j = i
                            | _ -> false)
                          imgs
                   then
                     emit env ~loc ~code:"refcount"
                       "Borrowed reference %s (tempref param %s) returned \
                        without a new reference (declare the result newref \
                        or take a reference)"
                       (Sref.to_string r) p.Sema.pr_name)
                 fs.Sema.fs_params
           | None -> ());
        (* allocation transfer through the result *)
        let only_result =
          match ret_an.Annot.an_alloc with
          | Some Annot.Only | Some Annot.Owned -> true
          | _ -> ret_an.Annot.an_newref
        in
        let st =
          if not (Ctype.is_pointer fs.Sema.fs_ret) then st
          else if only_result then begin
            (if
               env.flags.Flags.check_alloc
               && (not (can_transfer_obligation v.v_alloc))
               && (not ret_an.Annot.an_newref)
                  (* a newref result gets the refcount-family message *)
               && not (equal_nullstate v.v_null NSnull)
             then
               let desc =
                 match v.v_ref with
                 | Some r -> Sref.to_string r
                 | None -> "<expression>"
               in
               emit env ~loc ~code:"onlytrans"
                 "%s storage %s returned as only result"
                 (String.capitalize_ascii (allocstate_string v.v_alloc))
                 desc);
            match v.v_ref with
            | Some r when has_obligation (Store.get st r).Store.rs_alloc ->
                (* consumed by the caller *)
                Store.set_def ~loc st r DSdead
            | _ -> st
          end
          else begin
            (* result not declared only: a fresh object's obligation is
               lost ("a memory leak is suspected", Section 6) *)
            (if
               env.flags.Flags.check_alloc
               && (not env.flags.Flags.gc_mode)
               && has_obligation v.v_alloc
               && (match v.v_ref with
                  | Some r -> not (escapes env st r)
                  | None -> true)
             then
               let desc =
                 match v.v_ref with
                 | Some r -> Sref.to_string r
                 | None -> "<expression>"
               in
               emit env ~loc ~code:"mustfree"
                 "Fresh storage %s returned as unqualified result: obligation \
                  to release storage is lost (memory leak)"
                 desc);
            match v.v_ref with
            | Some r -> Store.set_alloc ~loc st r ASerror
            | None -> st
          end
        in
        st
  in
  (* ---- parameters ---- *)
  let st =
    List.fold_left
      (fun st (i, (p : Sema.param)) ->
        let r = Sref.root (Sref.Rparam (i, p.Sema.pr_name)) in
        let s = Store.get st r in
        let an = p.Sema.pr_annots.Sema.an in
        let is_dead = equal_defstate s.Store.rs_def DSdead in
        (* an unconsumed only parameter is a leak *)
        let st =
          match an.Annot.an_alloc with
          | Some Annot.Only | Some Annot.Keep ->
              if is_dead then st
              else
                (* the parameter's own external view is where the
                   obligation LIVES, not an escape route *)
                leak_check_ref
                  ~ignoring:(Sref.Rparam (i, p.Sema.pr_name))
                  env st r ~what:"return" ~loc
          | _ when an.Annot.an_killref ->
              if is_dead then st
              else
                leak_check_ref
                  ~ignoring:(Sref.Rparam (i, p.Sema.pr_name))
                  env st r ~what:"return" ~loc
          | _ when an.Annot.an_tempref ->
              (* a tempref reference is borrowed for the duration of the
                 call: storing it where it outlives the call (a global,
                 another parameter's object) escapes the borrow *)
              if
                env.flags.Flags.check_alloc && (not is_dead)
                && escapes
                     ~ignoring:(Sref.Rparam (i, p.Sema.pr_name))
                     env st r
              then begin
                emit env ~loc ~code:"refcount"
                  "Borrowed reference %s (tempref param) escapes through an \
                   externally visible reference when %s returns"
                  p.Sema.pr_name env.fs.Sema.fs_name;
                Store.set_alloc ~loc st r ASerror
              end
              else st
          | _ -> st
        in
        (* temp parameters must survive (a release was reported at the
           release site; here we check completeness only) *)
        let st =
          if is_dead then st
          else
            match an.Annot.an_def with
            | Some Annot.Out | Some Annot.Partial | Some Annot.RelDef
              when false ->
                st
            | _ ->
                if env.flags.Flags.check_def then
                  List.fold_left
                    (fun st m ->
                      emit env ~loc ~code:"compdef"
                        "Storage %s reachable from parameter %s is not \
                         completely defined when function returns"
                        (Sref.to_string m) p.Sema.pr_name;
                      Store.set_def ~loc st m DSerror)
                    st (incomplete_refs env st r)
                else st
        in
        st)
      st
      (List.mapi (fun i p -> (i, p)) fs.Sema.fs_params)
  in
  (* ---- globals ---- *)
  let st =
    List.fold_left
      (fun st (r, (s : Store.refstate)) ->
        match Sref.view r with
        | Sref.Root (Sref.Rglobal g) -> (
            match Hashtbl.find_opt env.prog.Sema.p_globals g with
            | None -> st
            | Some gv ->
                let declared = gv.Sema.gv_annots.Sema.an in
                let killed =
                  match List.assoc_opt g fs.Sema.fs_globals with
                  | Some ga -> ga.Annot.an_killed
                  | None -> false
                in
                (* null state at exit (Fig. 2) *)
                (if
                   env.flags.Flags.check_null
                   && Ctype.is_pointer gv.Sema.gv_ty
                   && (match declared.Annot.an_null with
                      | Some Annot.Null | Some Annot.RelNull -> false
                      | _ -> true)
                   && (match s.Store.rs_null with
                      | NSnull | NSpossnull -> true
                      | _ -> false)
                   && not (equal_defstate s.Store.rs_def DSdead)
                 then
                   let notes =
                     match s.Store.rs_nullloc with
                     | Some l when not (Loc.is_dummy l) ->
                         [ Diag.note ~loc:l
                             (Fmt.str "Storage %s may become null" g) ]
                     | _ -> []
                   in
                   emit env ~loc ~code:"globnull" ~notes
                     "Function returns with non-null global %s referencing \
                      null storage"
                     g);
                (* a released global must be declared killed *)
                let st =
                  if
                    env.flags.Flags.check_alloc
                    && equal_defstate s.Store.rs_def DSdead
                    && not killed
                  then begin
                    emit env ~loc ~code:"globstate"
                      "Function returns with released global %s" g;
                    Store.set_def ~loc st r DSerror
                  end
                  else if
                    env.flags.Flags.check_def
                    && not (equal_defstate s.Store.rs_def DSdead)
                  then
                    List.fold_left
                      (fun st m ->
                        emit env ~loc ~code:"compdef"
                          "Global %s is not completely defined when function \
                           returns (%s is undefined)"
                          g (Sref.to_string m);
                        Store.set_def ~loc st m DSerror)
                      st (incomplete_refs env st r)
                  else st
                in
                st)
        | _ -> st)
      st (Store.bindings st)
  in
  (* ---- locals still in scope, and unconsumed fresh storage ---- *)
  let st =
    List.fold_left
      (fun st scope -> leak_check_scope env st scope.vars ~loc)
      st env.scopes
  in
  let st =
    List.fold_left
      (fun st (r, _) ->
        match Sref.view r with
        | Sref.Root (Sref.Rfresh _) -> leak_check_ref env st r ~what:"return" ~loc
        | _ -> st)
      st (Store.bindings st)
  in
  st

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let push_breakable env =
  env.breaks <- [] :: env.breaks;
  env.continues <- [] :: env.continues

let pop_breakable env : Store.t list * Store.t list =
  match (env.breaks, env.continues) with
  | b :: brest, c :: crest ->
      env.breaks <- brest;
      env.continues <- crest;
      (b, c)
  | _ -> ([], [])

let note_break env st =
  match env.breaks with
  | b :: rest -> env.breaks <- (st :: b) :: rest
  | [] -> ()

let note_continue env st =
  match env.continues with
  | c :: rest -> env.continues <- (st :: c) :: rest
  | [] -> ()

let merge_all env ~loc (stores : Store.t list) : Store.t =
  match stores with
  | [] -> Store.unreachable Store.empty
  | s :: rest ->
      List.fold_left
        (fun acc s -> merge_reporting env ~loc acc s)
        s rest

(* ------------------------------------------------------------------ *)
(* Loop fixpoints ([+loopexec])                                        *)
(* ------------------------------------------------------------------ *)

(** Derivation-depth cap applied to loop stores by the [+loopexec]
    widening: references deeper than this collapse onto their depth-cap
    ancestor ({!Store.collapse_deep}), so a list walk like [p = p->next]
    cannot manufacture a new reference per iteration. *)
let loop_depth_cap = 3

(** A silenced copy of the environment for exploratory fixpoint
    iterations: diagnostics go to a scratch collector, exit observation
    is off (a silenced iteration must not feed inference summaries), and
    the scope chain is copied so declarations seen while re-running the
    body cannot pollute the real environment.  The mutable counters
    start from the real environment's current values and advance
    independently — each iteration gets a fresh copy, so fresh-storage
    and static ids restart identically every round (an allocation in
    the body maps to the same [Rfresh] root each time; otherwise the
    store would grow a new root per iteration and never converge). *)
let silent_env env =
  {
    env with
    diags = Diag.Collector.create ();
    exit_obs = None;
    scopes = List.map (fun s -> { vars = s.vars }) env.scopes;
    conflict_memo = Hashtbl.create 16;
    (* deep copy: exploratory iterations prune/replace entries and the
       real pass must not observe that *)
    realloc_sources =
      (let h = Hashtbl.create 4 in
       Hashtbl.iter
         (fun id (s : realloc_source) ->
           Hashtbl.replace h id { s with rsrc_saved = s.rsrc_saved })
         env.realloc_sources;
       h);
  }

let rec exec env st (stmt : Ast.stmt) : Store.t =
  if not (Store.is_reachable st) then st
  else
    let loc = stmt.sloc in
    match stmt.s with
    | Ast.Sskip -> st
    | Ast.Sexpr e ->
        let st, v = eval env st e in
        (* an unconsumed only result is an immediate leak *)
        (match v.v_ref with
        | Some r
          when match Sref.view r with
               | Sref.Root (Sref.Rfresh _) -> true
               | _ -> false ->
            leak_check_ref env st r ~what:"statement end" ~loc
        | _ -> st)
    | Ast.Sassert e ->
        (* keep only the path where the assertion holds *)
        let t, _ = split_cond env st e in
        t
    | Ast.Sdecl decls -> List.fold_left (exec_decl env ~loc) st decls
    | Ast.Sblock stmts ->
        push_scope env;
        let st = List.fold_left (exec env) st stmts in
        let scope = pop_scope env in
        let st =
          if Store.is_reachable st then
            leak_check_scope env st scope.vars ~loc
          else st
        in
        List.fold_left
          (fun st (name, _) -> Store.drop_root st (Sref.Rlocal name))
          st scope.vars
    | Ast.Sif (c, then_, else_) -> (
        let t, f = split_cond env st c in
        let t' = exec env t then_ in
        match else_ with
        | Some e ->
            let f' = exec env f e in
            merge_reporting env ~loc t' f'
        | None -> merge_reporting env ~loc t' f)
    | Ast.Swhile (c, body) ->
        exec_while env st ~loc c ~body:(fun env st -> exec env st body)
    | Ast.Sdo (body, c) ->
        exec_do env st ~loc ~body:(fun env st -> exec env st body) c
    | Ast.Sfor (init, cond, step, body) ->
        (* the initializer runs exactly once in either analysis mode *)
        let st = match init with Some s -> exec env st s | None -> st in
        exec_for env st ~loc cond step ~body:(fun env st -> exec env st body)
    | Ast.Sreturn eopt ->
        let st, ret =
          match eopt with
          | Some e ->
              let st, v = eval env st e in
              (st, Some v)
          | None -> (st, None)
        in
        let st = check_exit env st ~ret ~loc in
        Store.unreachable st
    | Ast.Sbreak ->
        note_break env st;
        Store.unreachable st
    | Ast.Scontinue ->
        note_continue env st;
        Store.unreachable st
    | Ast.Sswitch (e, body) -> (
        let st, _ = eval env st e in
        push_breakable env;
        (* each case arm is analysed from the switch-entry state;
           fall-through between arms is not modelled *)
        let arms, has_default =
          match body.s with
          | Ast.Sblock stmts ->
              let rec segment acc cur has_default = function
                | [] -> (List.rev (List.rev cur :: acc), has_default)
                | ({ Ast.s = Ast.Scase _; _ } as s) :: rest when cur <> [] ->
                    segment (List.rev cur :: acc) [ s ] has_default rest
                | ({ Ast.s = Ast.Sdefault _; _ } as s) :: rest when cur <> []
                  ->
                    segment (List.rev cur :: acc) [ s ] true rest
                | ({ Ast.s = Ast.Sdefault _; _ } as s) :: rest ->
                    segment acc (s :: cur) true rest
                | s :: rest -> segment acc (s :: cur) has_default rest
              in
              segment [] [] false stmts
          | _ -> ([ [ body ] ], false)
        in
        let arm_ends =
          List.map
            (fun arm ->
              push_scope env;
              let st' = List.fold_left (exec env) st arm in
              let scope = pop_scope env in
              let st' =
                List.fold_left
                  (fun st (name, _) -> Store.drop_root st (Sref.Rlocal name))
                  st' scope.vars
              in
              st')
            arms
        in
        let breaks, _ = pop_breakable env in
        let ends = List.filter Store.is_reachable arm_ends in
        let all = ends @ breaks @ if has_default then [] else [ st ] in
        match all with
        | [] -> Store.unreachable st
        | _ -> merge_all env ~loc all)
    | Ast.Scase (_, s) -> exec env st s
    | Ast.Sdefault s -> exec env st s
    | Ast.Sgoto _ ->
        emit env ~severity:Diag.Info ~loc ~code:"goto"
          "goto is not analyzed; paths through this label are not checked";
        Store.unreachable st
    | Ast.Slabel (_, s) -> exec env st s

and exec_decl env ~loc st (d : Ast.decl) : Store.t =
  if d.d_name = "" then begin
    ignore (Sema.resolve_ty env.prog ~loc d.d_ty);
    st
  end
  else if d.d_storage = Ast.Stypedef then begin
    Sema.process_decl env.prog d;
    st
  end
  else if d.d_storage = Ast.Sextern then begin
    Sema.process_decl env.prog d;
    st
  end
  else begin
    let ty = Sema.resolve_ty env.prog ~loc:d.d_loc d.d_ty in
    let set, errs = Annot.of_annots d.d_annots in
    List.iter
      (fun (e : Annot.parse_error) ->
        emit env ~loc:e.pe_loc ~code:"annot" "%s" e.pe_text)
      errs;
    let set = Annot.override ~base:(Sema.typedef_annots env.prog ty) ~decl:set in
    add_local env d.d_name
      { li_ty = ty; li_annots = set; li_loc = d.d_loc; li_param = None };
    let r = Sref.root (Sref.Rlocal d.d_name) in
    let st = Store.drop_root st (Sref.Rlocal d.d_name) in
    match d.d_init with
    | Some (Ast.Iexpr e) ->
        let st, v = eval env st e in
        (* seed the uninitialized state, then assign *)
        let st =
          Store.set st r
            (Store.mk_refstate ~def:DSundefined
               ~null:(if Ctype.is_pointer ty then NSpossnull else NSuntracked)
               ~alloc:ASnone ~defloc:d.d_loc ~allocloc:d.d_loc ())
        in
        do_assign env st ~lhs_ref:r ~lhs_ty:ty ~rhs:v ~loc:d.d_loc
    | Some (Ast.Ilist _) ->
        Store.set st r
          (Store.mk_refstate ~def:DSdefined
             ~null:(if Ctype.is_pointer ty then NSnotnull else NSuntracked)
             ~alloc:ASstack ~defloc:d.d_loc ~allocloc:d.d_loc ())
    | None ->
        let def =
          match Ctype.unroll ty with
          | Ctype.Carray _ -> DSallocated
          | t when Ctype.is_aggregate t -> DSallocated
          | _ -> DSundefined
        in
        let null =
          match Ctype.unroll ty with
          | Ctype.Carray _ -> NSnotnull
          | _ when Ctype.is_pointer ty -> NSpossnull
          | _ -> NSuntracked
        in
        let alloc =
          match Ctype.unroll ty with
          | Ctype.Carray _ -> ASstack
          | t when Ctype.is_aggregate t -> ASstack
          | _ -> ASnone
        in
        Store.set st r
          (Store.mk_refstate ~def ~null ~alloc ~defloc:d.d_loc
             ~allocloc:d.d_loc ())
  end

(* ---- loop dispatch ----

   The loop analyses are shared between the AST walk and the flat-IR
   interpreter: [~body] analyses the loop body once from a given store
   ([fun env st -> exec env st body] or a [run_block] closure). *)

and exec_while env st ~loc c ~body =
  if env.flags.Flags.loop_exec then exec_while_fixpoint env st ~loc c ~body
  else exec_while_heuristic env st ~loc c ~body

and exec_do env st ~loc ~body c =
  if env.flags.Flags.loop_exec then exec_do_fixpoint env st ~loc ~body c
  else exec_do_heuristic env st ~loc ~body c

and exec_for env st ~loc cond step ~body =
  if env.flags.Flags.loop_exec then exec_for_fixpoint env st ~loc cond step ~body
  else exec_for_heuristic env st ~loc cond step ~body

(* ---- the paper's zero-or-one-times loop heuristic (default) ---- *)

and exec_while_heuristic env st ~loc c ~body =
  (* "The while loop is treated identically to an if statement —
     there is no back edge" *)
  push_breakable env;
  let t, f = split_cond env st c in
  let t' = body env t in
  let breaks, continues = pop_breakable env in
  merge_all env ~loc ((t' :: f :: breaks) @ continues)

and exec_do_heuristic env st ~loc ~body c =
  (* the body executes at least once — a [do] body is not "zero or one
     times"; a continue re-tests the condition, a break skips it *)
  push_breakable env;
  let st = body env st in
  let breaks, continues = pop_breakable env in
  let st = merge_all env ~loc (st :: continues) in
  let f = if Store.is_reachable st then snd (split_cond env st c) else st in
  merge_all env ~loc (f :: breaks)

and exec_for_heuristic env st ~loc cond step ~body =
  push_breakable env;
  let t, f =
    match cond with
    | Some c -> split_cond env st c
    | None -> (st, Store.unreachable st)
  in
  let t' = body env t in
  let t' =
    if Store.is_reachable t' then
      match step with Some s -> fst (eval env t' s) | None -> t'
    else t'
  in
  let breaks, continues = pop_breakable env in
  merge_all env ~loc ((t' :: f :: breaks) @ continues)

(* ---- the [+loopexec] fixpoint mode ---- *)

(* The loop-entry store is joined ({!Store.widen}) with the back-edge
   stores of each exploratory body run until it stabilizes; only then is
   the body analysed once more on the real environment, from the
   converged store, to emit diagnostics.  Termination is by widening:
   the join resolves def/null/alloc states upward in their finite
   lattices and {!Store.collapse_deep} caps derivation depth.  [round]
   analyses the body once from an entry store on a silenced environment
   and returns the store feeding the back edge. *)

and loop_fixpoint env st ~(round : env -> Store.t -> Store.t) :
    [ `Converged of Store.t | `Bailout ] =
  let bound = max 1 env.flags.Flags.loop_iter in
  let rec go e n =
    if n >= bound then begin
      Telemetry.Counter.tick Telemetry.c_loop_bailouts;
      `Bailout
    end
    else begin
      Telemetry.Counter.tick Telemetry.c_loop_fixpoint_iters;
      let back = round (silent_env env) e in
      let e' =
        Store.collapse_deep ~depth:loop_depth_cap (Store.widen e back)
      in
      if Store.equal e' e then `Converged e
      else begin
        Telemetry.Counter.tick Telemetry.c_loop_widenings;
        go e' (n + 1)
      end
    end
  in
  go (Store.collapse_deep ~depth:loop_depth_cap st) 0

and exec_while_fixpoint env st ~loc c ~body =
  let round shadow e =
    push_breakable shadow;
    let t, _ = split_cond shadow e c in
    let bend = body shadow t in
    let _, continues = pop_breakable shadow in
    (* body end and continue paths re-test the condition *)
    List.fold_left Store.widen bend continues
  in
  match loop_fixpoint env st ~round with
  | `Bailout -> exec_while_heuristic env st ~loc c ~body
  | `Converged e ->
      push_breakable env;
      let t, f = split_cond env e c in
      (* reporting pass: the body-end state flows to the back edge,
         which the converged entry store already covers *)
      let (_ : Store.t) = body env t in
      let breaks, _ = pop_breakable env in
      merge_all env ~loc (f :: breaks)

and exec_do_fixpoint env st ~loc ~body c =
  (* the converged store is the BODY entry: the first trip runs from the
     loop's own entry store, preserving at-least-once semantics *)
  let round shadow e =
    push_breakable shadow;
    let bend = body shadow e in
    let _, continues = pop_breakable shadow in
    let ends = List.fold_left Store.widen bend continues in
    if Store.is_reachable ends then fst (split_cond shadow ends c) else ends
  in
  match loop_fixpoint env st ~round with
  | `Bailout -> exec_do_heuristic env st ~loc ~body c
  | `Converged e ->
      push_breakable env;
      let bend = body env e in
      let breaks, continues = pop_breakable env in
      let ends = merge_all env ~loc (bend :: continues) in
      let f =
        if Store.is_reachable ends then snd (split_cond env ends c) else ends
      in
      merge_all env ~loc (f :: breaks)

and exec_for_fixpoint env st ~loc cond step ~body =
  let split env e =
    match cond with
    | Some c -> split_cond env e c
    | None -> (e, Store.unreachable e)
  in
  let round shadow e =
    push_breakable shadow;
    let t, _ = split shadow e in
    let bend = body shadow t in
    let _, continues = pop_breakable shadow in
    (* continue jumps to the step, as does falling off the body end *)
    let back = List.fold_left Store.widen bend continues in
    if Store.is_reachable back then
      match step with Some s -> fst (eval shadow back s) | None -> back
    else back
  in
  match loop_fixpoint env st ~round with
  | `Bailout -> exec_for_heuristic env st ~loc cond step ~body
  | `Converged e ->
      push_breakable env;
      let t, f = split env e in
      let bend = body env t in
      (* run the step once for its diagnostics; its abstract effect is
         already folded into the converged entry store *)
      (if Store.is_reachable bend then
         match step with Some s -> ignore (eval env bend s) | None -> ());
      let breaks, _ = pop_breakable env in
      merge_all env ~loc (f :: breaks)

(* ---- the flat-IR interpreter (the default engine) ---- *)

(* Every case replicates the matching [exec] case exactly; the only
   difference is that sub-statements are pre-lowered blocks, so the
   per-procedure walk dispatches over compact instruction arrays instead
   of the AST ([+treewalk] selects [exec]; diagnostics are identical
   either way — see docs/performance.md). *)

and run_block env (p : Ir.proc) st (b : Ir.block) : Store.t =
  let instrs = Array.unsafe_get p.Ir.p_blocks b in
  run_instrs env p instrs (Array.length instrs) st 0

(* the reachability guard is hoisted out of [run_instr]: a dead state
   skips the rest of the block without dispatching, and the tail
   recursion allocates nothing per step *)
and run_instrs env p instrs n st i =
  if i >= n || not (Store.is_reachable st) then st
  else
    run_instrs env p instrs n
      (run_instr env p st (Array.unsafe_get instrs i))
      (i + 1)

and run_instr env (p : Ir.proc) st (ins : Ir.instr) : Store.t =
    match ins with
    | Ir.Iexpr (e, loc) ->
        let st, v = eval env st e in
        (* an unconsumed only result is an immediate leak *)
        (match v.v_ref with
        | Some r
          when match Sref.view r with
               | Sref.Root (Sref.Rfresh _) -> true
               | _ -> false ->
            leak_check_ref env st r ~what:"statement end" ~loc
        | _ -> st)
    | Ir.Iassert e ->
        (* keep only the path where the assertion holds *)
        let t, _ = split_cond env st e in
        t
    | Ir.Idecl (decls, loc) -> List.fold_left (exec_decl env ~loc) st decls
    | Ir.Iscope (b, loc) ->
        push_scope env;
        let st = run_block env p st b in
        let scope = pop_scope env in
        let st =
          if Store.is_reachable st then
            leak_check_scope env st scope.vars ~loc
          else st
        in
        List.fold_left
          (fun st (name, _) -> Store.drop_root st (Sref.Rlocal name))
          st scope.vars
    | Ir.Iif (c, bt, bf, loc) -> (
        let t, f = split_cond env st c in
        let t' = run_block env p t bt in
        match bf with
        | Some b ->
            let f' = run_block env p f b in
            merge_reporting env ~loc t' f'
        | None -> merge_reporting env ~loc t' f)
    | Ir.Iwhile (c, b, loc) ->
        exec_while env st ~loc c ~body:(fun env st -> run_block env p st b)
    | Ir.Ido (b, c, loc) ->
        exec_do env st ~loc ~body:(fun env st -> run_block env p st b) c
    | Ir.Ifor (cond, step, b, loc) ->
        (* the initializer was lowered inline before this instruction *)
        exec_for env st ~loc cond step
          ~body:(fun env st -> run_block env p st b)
    | Ir.Iret (eopt, loc) ->
        let st, ret =
          match eopt with
          | Some e ->
              let st, v = eval env st e in
              (st, Some v)
          | None -> (st, None)
        in
        let st = check_exit env st ~ret ~loc in
        Store.unreachable st
    | Ir.Ibreak ->
        note_break env st;
        Store.unreachable st
    | Ir.Icontinue ->
        note_continue env st;
        Store.unreachable st
    | Ir.Iswitch (e, arms, has_default, loc) -> (
        let st, _ = eval env st e in
        push_breakable env;
        (* each case arm is analysed from the switch-entry state;
           fall-through between arms is not modelled (arms were
           pre-segmented at lowering) *)
        let arm_ends =
          Array.to_list
            (Array.map
               (fun arm ->
                 push_scope env;
                 let st' = run_block env p st arm in
                 let scope = pop_scope env in
                 List.fold_left
                   (fun st (name, _) ->
                     Store.drop_root st (Sref.Rlocal name))
                   st' scope.vars)
               arms)
        in
        let breaks, _ = pop_breakable env in
        let ends = List.filter Store.is_reachable arm_ends in
        let all = ends @ breaks @ if has_default then [] else [ st ] in
        match all with
        | [] -> Store.unreachable st
        | _ -> merge_all env ~loc all)
    | Ir.Igoto loc ->
        emit env ~severity:Diag.Info ~loc ~code:"goto"
          "goto is not analyzed; paths through this label are not checked";
        Store.unreachable st

(* ------------------------------------------------------------------ *)
(* Function and program checking                                       *)
(* ------------------------------------------------------------------ *)

(* ---- per-domain cache of lowered procedures ----

   A procedure is re-checked by annotation-inference probes and by warm
   incremental-server requests; lowering is cheap but not free, so each
   domain memoizes [Ir.lower_fundef] keyed by the definition's name and
   location.  A hit requires the cached entry to have been lowered from
   the very same [fundef] value (physical equality) — a re-parsed or
   patched definition at the same location is re-lowered.  Each key
   keeps a short chain of distinct definitions rather than just the
   latest one, so several analysed snapshots of the same source (bench
   repetitions, server generations) coexist without evicting each
   other. *)

type ir_entry = { e_fd : Ast.fundef; e_proc : Ir.proc }

let ir_cache_cap = 16384
let ir_cache_assoc = 8

let ir_cache_key : (string * Loc.t, ir_entry list) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 256)

let lower_cached (f : Ast.fundef) : Ir.proc =
  let tbl = Domain.DLS.get ir_cache_key in
  let key = (f.Ast.f_name, f.Ast.f_loc) in
  let prev =
    match Hashtbl.find_opt tbl key with Some es -> es | None -> []
  in
  match List.find_opt (fun e -> e.e_fd == f) prev with
  | Some e -> e.e_proc
  | None ->
      let p = Ir.lower_fundef f in
      let e = { e_fd = f; e_proc = p } in
      if Hashtbl.length tbl >= ir_cache_cap then Hashtbl.reset tbl;
      let entries =
        (* re-read: the reset above may have emptied the table *)
        match Hashtbl.find_opt tbl key with
        | Some es when List.length es < ir_cache_assoc -> e :: es
        | _ -> [ e ]
      in
      Hashtbl.replace tbl key entries;
      p

(** Does this signature carry any inference-synthesized annotation? *)
let funsig_inferred (fs : Sema.funsig) : bool =
  Annot.is_inferred fs.Sema.fs_ret_annots.Sema.an
  || List.exists
       (fun (p : Sema.param) -> Annot.is_inferred p.Sema.pr_annots.Sema.an)
       fs.Sema.fs_params

(** Check one function definition against its interface.

    [diags] redirects the procedure's messages away from the program's
    collector (annotation inference probes candidate annotations into a
    scratch collector); [exit_obs] observes the raw abstract state at
    every reachable exit (summary extraction). *)
let check_fundef ?diags ?exit_obs ?summaries (prog : Sema.program)
    (fs : Sema.funsig) (f : Ast.fundef) : unit =
  Telemetry.Counter.tick Telemetry.c_procedures;
  Telemetry.with_span ~file:fs.Sema.fs_loc.Loc.file ~label:fs.Sema.fs_name
    Telemetry.phase_check
  @@ fun () ->
  let proc_inferred =
    funsig_inferred fs
    || List.exists
         (fun callee ->
           match Hashtbl.find_opt prog.Sema.p_funcs callee with
           | Some g -> funsig_inferred g
           | None -> false)
         (Sema.calls_of_fundef f)
  in
  let env =
    {
      prog;
      flags = prog.Sema.flags;
      fs;
      diags = Option.value diags ~default:prog.Sema.diags;
      exit_obs;
      proc_inferred;
      scopes = [];
      breaks = [];
      continues = [];
      fresh = 0;
      statics = 0;
      conflict_memo = Hashtbl.create 16;
      realloc_sources = Hashtbl.create 4;
      summaries;
      escaped_args = Sref.Set.empty;
    }
  in
  (* [+xproc]: compare the function's own declared interface against its
     derived effect summary; a declaration the body contradicts is a
     [summaryclash] *)
  (match summaries with
  | Some tbl when env.flags.Flags.xproc -> (
      match Hashtbl.find_opt tbl fs.Sema.fs_name with
      | Some sm ->
          List.iteri
            (fun i (p : Sema.param) ->
              let ea = p.Sema.pr_annots in
              let explicit_temp =
                (not ea.Sema.alloc_implicit)
                && ea.Sema.an.Annot.an_alloc = Some Annot.Temp
              in
              if explicit_temp && i < Array.length sm.Summary.sm_params then
                match sm.Summary.sm_params.(i).Summary.pe_rel with
                | Summary.Prel | Summary.Prelnull | Summary.Pcond ->
                    Telemetry.Counter.tick Telemetry.c_summary_clashes;
                    emit env ~severity:Diag.Warn ~loc:p.Sema.pr_loc
                      ~code:"summaryclash"
                      "Parameter %s of %s is declared temp but the body may \
                       release it"
                      p.Sema.pr_name fs.Sema.fs_name
                | Summary.Pnone | Summary.Ptop -> ())
            fs.Sema.fs_params;
          if
            fs.Sema.fs_ret_annots.Sema.an.Annot.an_null = Some Annot.NotNull
            && Ctype.is_pointer fs.Sema.fs_ret && sm.Summary.sm_ret_null
          then begin
            Telemetry.Counter.tick Telemetry.c_summary_clashes;
            emit env ~severity:Diag.Warn ~loc:fs.Sema.fs_loc
              ~code:"summaryclash"
              "Function %s is declared notnull but may return null"
              fs.Sema.fs_name
          end
      | None -> ())
  | _ -> ());
  push_scope env;
  (* parameters: local variable aliasing the externally visible arg *)
  let st =
    List.fold_left
      (fun st (i, (p : Sema.param)) ->
        add_local env p.Sema.pr_name
          {
            li_ty = p.Sema.pr_ty;
            li_annots = p.Sema.pr_annots.Sema.an;
            li_loc = p.Sema.pr_loc;
            li_param = Some i;
          };
        let s =
          entry_state env ~ty:p.Sema.pr_ty ~annots:p.Sema.pr_annots.Sema.an
            ~loc:p.Sema.pr_loc
        in
        let local = Sref.root (Sref.Rlocal p.Sema.pr_name) in
        let extern = Sref.root (Sref.Rparam (i, p.Sema.pr_name)) in
        let st = Store.set st local s in
        let st = Store.set st extern s in
        if env.flags.Flags.alias_tracking then Store.add_alias st local extern
        else st)
      Store.empty
      (List.mapi (fun i p -> (i, p)) fs.Sema.fs_params)
  in
  let st =
    if env.flags.Flags.tree_walk then exec env st f.Ast.f_body
    else
      let p = lower_cached f in
      run_block env p st p.Ir.p_entry
  in
  if Store.is_reachable st then begin
    let loc = f.Ast.f_loc in
    (if
       (not (Ctype.is_void fs.Sema.fs_ret)) && fs.Sema.fs_name <> "main"
     then
       emit env ~severity:Diag.Warn ~loc ~code:"noret"
         "Control reaches the end of non-void function %s" fs.Sema.fs_name);
    ignore (check_exit env st ~ret:None ~loc)
  end;
  ignore (pop_scope env)

(** Check every function defined in the program.  Diagnostics accumulate in
    [prog.diags]. *)
let check_program (prog : Sema.program) : unit =
  let summaries =
    if prog.Sema.flags.Flags.xproc then Some (Summary.of_program prog)
    else None
  in
  List.iter (fun (fs, f) -> check_fundef ?summaries prog fs f)
    (Sema.fundefs prog)
