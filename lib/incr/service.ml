(** The incremental checking service (see incr.mli for the contract).

    Cache structure:

    - [files]: per-file parse artifacts — the source text, its digest,
      the typedef-name snapshot it was parsed under, and the AST.  A
      request's changed set is found by comparing texts (memcmp), so the
      warm path never re-hashes unchanged sources.
    - [fns]: per-function summaries keyed by (defining file, name).  An
      entry pins the checked AST object, the funsig hash of the function
      and of each direct callee, the type-environment hash and the
      canonical flag string; it is valid while all of those still hold.
    - [persisted]: content-key → diagnostics, loaded from a {!save}d
      artifact; a miss whose full content key is present here adopts the
      stored diagnostics instead of re-checking.

    Update tiers, cheapest first:

    - {e Clean}: no text changed — answer from cache.
    - {e Patched}: every changed file kept all its interfaces
      structurally identical (declarations and function headers equal
      including locations; only bodies differ).  The new bodies are
      patched into the persistent environment with {!Sema.patch_fundef};
      unchanged functions keep their entries by generation, dirty ones
      are dropped and re-checked.  No re-parse of unchanged files, no
      re-sema of anything.
    - {e Rebuilt}: an interface, the file list or the flag set changed.
      The environment is rebuilt (unchanged files reuse cached ASTs so
      only changed files re-parse) and every function revalidates
      against the new funsig/type-env hashes — a funsig edit therefore
      re-checks exactly the edited function and the functions that call
      it.

    Checking always runs against {!Sema.copy_for_check} copies on the
    {!Parcheck.map_tasks} pool, grouped by file, so results are
    byte-identical to a cold [olclint] run at every [-j]. *)

module Ast = Cfront.Ast
module Diag = Cfront.Diag
module Loc = Cfront.Loc
module Flags = Annot.Flags
module J = Telemetry.Json

type doc = { doc_name : string; doc_text : string }

let doc_of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      { doc_name = path; doc_text = really_input_string ic (in_channel_length ic) })

type fn_entry = {
  mutable fn_fd : Ast.fundef;  (** the AST object the summary is for *)
  fn_sig_hash : string;
  fn_callees : (string * string) list;  (** direct callee → funsig hash *)
  fn_callee_sums : (string * string) list;
      (** direct callee → effect-summary hash; populated only under
          [+xproc], where a callee {e body} edit that changes the
          callee's derived effects must re-check this caller even though
          the callee's declared signature is unchanged *)
  fn_flags_canon : string;
  fn_typeenv_hash : string;
  fn_diags : Diag.t list;  (** raw checker output, unsorted, unsuppressed *)
  mutable fn_gen : int;  (** generation of the last validation *)
}

type file_entry = {
  fe_text : string;
  fe_digest : string;  (** hex digest of [fe_text] *)
  fe_typedefs : string list;  (** typedef names in scope at parse time *)
  fe_ast : Ast.tunit;
}

type t = {
  base_flags : Flags.t;
  no_stdlib : bool;
  libs : (string * string) list;
  specs : (string * string) list;
  mutable flags : Flags.t;
  mutable flags_canon : string;
  mutable env : Sema.program option;
  mutable base_pragmas : Ast.annot list;
      (** pragmas contributed by libraries/specs, before any document *)
  mutable doc_order : string list;
  files : (string, file_entry) Hashtbl.t;
  fns : (string * string, fn_entry) Hashtbl.t;
  mutable sig_hashes : (string, string) Hashtbl.t;
  mutable summary_hashes : (string, string) Hashtbl.t;
      (** function → effect-summary hash; refreshed at the top of every
          revalidation when [+xproc] is on, empty otherwise *)
  mutable typeenv_hash : string;
  mutable gen : int;
  persisted : (string, string * string * Diag.t list) Hashtbl.t;
      (** content key → (file, fn, diagnostics) *)
  mutable n_hits : int;
  mutable n_misses : int;
  mutable n_invalidated : int;
  mutable n_rechecked : int;
}

let create ?(flags = Flags.default) ?(no_stdlib = false) ?(load_libs = [])
    ?(lcl_specs = []) () =
  {
    base_flags = flags;
    no_stdlib;
    libs = load_libs;
    specs = lcl_specs;
    flags;
    flags_canon = Flags.canonical flags;
    env = None;
    base_pragmas = [];
    doc_order = [];
    files = Hashtbl.create 64;
    fns = Hashtbl.create 256;
    sig_hashes = Hashtbl.create 256;
    summary_hashes = Hashtbl.create 256;
    typeenv_hash = "";
    gen = 0;
    persisted = Hashtbl.create 64;
    n_hits = 0;
    n_misses = 0;
    n_invalidated = 0;
    n_rechecked = 0;
  }

type tier = Cold | Clean | Patched | Rebuilt

let tier_name = function
  | Cold -> "cold"
  | Clean -> "clean"
  | Patched -> "patched"
  | Rebuilt -> "rebuilt"

type outcome = {
  oc_tier : tier;
  oc_kept : Diag.t list;
  oc_suppressed : Diag.t list;
  oc_functions : int;
  oc_hits : int;
  oc_misses : int;
  oc_rechecked : int;
  oc_invalidated : int;
}

(* ------------------------------------------------------------------ *)
(* Fingerprints                                                        *)
(* ------------------------------------------------------------------ *)

let hex s = Digest.to_hex (Digest.string s)

(* The funsig hash covers the full derived signature — name, resolved
   types, annotations (provenance bits included), globals/modifies
   lists, linkage and the declaration location.  Including the location
   keeps cached note lines honest: a callee whose declaration moved
   conservatively invalidates its callers. *)
let funsig_hash (fs : Sema.funsig) = hex (Sema.show_funsig fs)

(* Everything a body check can read besides funsigs: struct layouts,
   typedef expansions and annotations, global variables, enum constants. *)
let typeenv_fingerprint (env : Sema.program) =
  let b = Buffer.create 8192 in
  List.iter
    (fun tag ->
      match Hashtbl.find_opt env.Sema.p_structs tag with
      | Some su -> Buffer.add_string b (Sema.show_suinfo su)
      | None -> ())
    (Sema.struct_order env);
  List.iter
    (fun name ->
      match Hashtbl.find_opt env.Sema.p_typedefs name with
      | Some (ty, set) ->
          Buffer.add_string b name;
          Buffer.add_string b (Sema.Ctype.show ty);
          Buffer.add_string b (Annot.show_set set)
      | None -> ())
    (Sema.typedef_order env);
  List.iter
    (fun name ->
      match Hashtbl.find_opt env.Sema.p_globals name with
      | Some gv -> Buffer.add_string b (Sema.show_globalvar gv)
      | None -> ())
    (Sema.global_order env);
  let enums =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) env.Sema.p_enum_consts []
    |> List.sort compare
  in
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s=%Ld;" k v))
    enums;
  hex (Buffer.contents b)

let callee_hash t name =
  match Hashtbl.find_opt t.sig_hashes name with Some h -> h | None -> "?"

let callee_summary_hash t name =
  match Hashtbl.find_opt t.summary_hashes name with Some h -> h | None -> "?"

let cache_kind = "summary-cache"
let cache_version = 1

(* The full content key of one function result — the on-disk identity.
   It covers every input the checker reads for this function: the cache
   format itself, the flag set, the type environment, the function's own
   signature, its callees' signatures, and the exact body (the AST
   printed with locations, so even a pure reformat that moves lines gets
   a fresh key — diagnostics carry line numbers). *)
let full_key t (fs : Sema.funsig) (fd : Ast.fundef) =
  let b = Buffer.create 512 in
  Buffer.add_string b (string_of_int cache_version);
  Buffer.add_char b '\n';
  Buffer.add_string b t.flags_canon;
  Buffer.add_char b '\n';
  Buffer.add_string b t.typeenv_hash;
  Buffer.add_char b '\n';
  Buffer.add_string b (funsig_hash fs);
  Buffer.add_char b '\n';
  List.iter
    (fun c ->
      Buffer.add_string b c;
      Buffer.add_char b '=';
      Buffer.add_string b (callee_hash t c);
      Buffer.add_char b ';')
    (Sema.calls_of_fundef fd);
  Buffer.add_char b '\n';
  (* [+xproc] only: the checker additionally reads the callees' derived
     effect summaries, so they join the content key.  Gated on the flag
     to leave every non-xproc key byte-identical to before. *)
  if t.flags.Flags.xproc then begin
    List.iter
      (fun c ->
        Buffer.add_string b c;
        Buffer.add_char b '!';
        Buffer.add_string b (callee_summary_hash t c);
        Buffer.add_char b ';')
      (Sema.calls_of_fundef fd);
    Buffer.add_char b '\n'
  end;
  Buffer.add_string b (hex (Ast.show_fundef fd));
  hex (Buffer.contents b)

(* ------------------------------------------------------------------ *)
(* Structural interface comparison (the Patched-tier gate)             *)
(* ------------------------------------------------------------------ *)

let skip_body =
  { Ast.s = Ast.Sskip; Ast.sloc = { Loc.file = ""; line = 0; col = 0 } }

(* True when the two units declare the same interfaces at the same
   locations — every topdecl structurally equal except that function
   bodies may differ.  Location-inclusive on purpose: a body edit that
   shifts later lines makes the later functions compare unequal here?
   No — this compares interfaces only; shifted function *headers* make
   their [f_loc]s differ, so a line-count-changing edit falls through to
   the per-function body check below, which treats shifted functions as
   dirty (their cached diagnostics would carry stale line numbers). *)
let body_only_change (old_tu : Ast.tunit) (new_tu : Ast.tunit) =
  List.length old_tu.Ast.tu_decls = List.length new_tu.Ast.tu_decls
  && List.for_all2
       (fun od nd ->
         match (od, nd) with
         | Ast.Tfundef a, Ast.Tfundef b ->
             Ast.equal_fundef
               { a with Ast.f_body = skip_body }
               { b with Ast.f_body = skip_body }
         | _ -> Ast.equal_topdecl od nd)
       old_tu.Ast.tu_decls new_tu.Ast.tu_decls

(* ------------------------------------------------------------------ *)
(* Environment (re)construction                                        *)
(* ------------------------------------------------------------------ *)

let typedef_snapshot (env : Sema.program) = Sema.typedef_order env

(* Build a complete environment for [docs], reusing cached ASTs for
   files whose text and typedef scope are unchanged.  Raises
   [Diag.Fatal] on frontend errors — the caller commits no state until
   this returns. *)
let build_env t ~flags docs =
  let env =
    if t.no_stdlib then Sema.create_program ~flags ~file:"<none>" ()
    else Stdspec.environment ~flags ()
  in
  List.iter
    (fun (name, text) ->
      ignore (Check.Libspec.load ~flags ~into:env ~file:name text))
    t.libs;
  List.iter
    (fun (name, text) ->
      ignore (Sema.analyze_spec_string ~flags ~into:env ~file:name text))
    t.specs;
  let base_pragmas = env.Sema.p_pragmas in
  let new_files = Hashtbl.create (List.length docs * 2) in
  List.iter
    (fun d ->
      let tdefs = typedef_snapshot env in
      let ast =
        match Hashtbl.find_opt t.files d.doc_name with
        | Some fe
          when String.equal fe.fe_text d.doc_text && fe.fe_typedefs = tdefs ->
            fe.fe_ast
        | _ ->
            Cfront.Parser.parse_string ~typedefs:tdefs ~file:d.doc_name
              d.doc_text
      in
      ignore (Sema.analyze ~flags ~into:env ast);
      Hashtbl.replace new_files d.doc_name
        {
          fe_text = d.doc_text;
          fe_digest = hex d.doc_text;
          fe_typedefs = tdefs;
          fe_ast = ast;
        })
    docs;
  (env, base_pragmas, new_files)

let commit_env t ~flags ~canon env base_pragmas new_files docs =
  t.env <- Some env;
  t.flags <- flags;
  t.flags_canon <- canon;
  t.base_pragmas <- base_pragmas;
  t.doc_order <- List.map (fun d -> d.doc_name) docs;
  Hashtbl.reset t.files;
  Hashtbl.iter (Hashtbl.replace t.files) new_files;
  let sigs = Hashtbl.create (Hashtbl.length env.Sema.p_funcs * 2) in
  Hashtbl.iter
    (fun name fs -> Hashtbl.replace sigs name (funsig_hash fs))
    env.Sema.p_funcs;
  t.sig_hashes <- sigs;
  t.typeenv_hash <- typeenv_fingerprint env;
  t.gen <- t.gen + 1

(* ------------------------------------------------------------------ *)
(* Validation and re-checking                                          *)
(* ------------------------------------------------------------------ *)

let fn_id (fs : Sema.funsig) = (fs.Sema.fs_loc.Loc.file, fs.Sema.fs_name)

let entry_valid t (e : fn_entry) (fs : Sema.funsig) (fd : Ast.fundef) =
  (e.fn_fd == fd || Ast.equal_fundef e.fn_fd fd)
  && String.equal e.fn_flags_canon t.flags_canon
  && String.equal e.fn_typeenv_hash t.typeenv_hash
  && (match Hashtbl.find_opt t.sig_hashes fs.Sema.fs_name with
     | Some h -> String.equal h e.fn_sig_hash
     | None -> false)
  && List.for_all
       (fun (c, h) -> String.equal h (callee_hash t c))
       e.fn_callees
  && List.for_all
       (fun (c, h) -> String.equal h (callee_summary_hash t c))
       e.fn_callee_sums

let make_entry t (fs : Sema.funsig) (fd : Ast.fundef) diags =
  {
    fn_fd = fd;
    fn_sig_hash =
      (match Hashtbl.find_opt t.sig_hashes fs.Sema.fs_name with
      | Some h -> h
      | None -> funsig_hash fs);
    fn_callees =
      List.map (fun c -> (c, callee_hash t c)) (Sema.calls_of_fundef fd);
    fn_callee_sums =
      (if t.flags.Flags.xproc then
         List.map
           (fun c -> (c, callee_summary_hash t c))
           (Sema.calls_of_fundef fd)
       else []);
    fn_flags_canon = t.flags_canon;
    fn_typeenv_hash = t.typeenv_hash;
    fn_diags = diags;
    fn_gen = t.gen;
  }

(* Validate every function of the environment against the cache; adopt
   persisted results by content key; re-check the rest on the checking
   pool, grouped by file exactly like the cold driver.  Returns
   (hits, misses, rechecked). *)
let revalidate_and_check t ~jobs (env : Sema.program) =
  (* [+xproc]: refresh the effect-summary table first — validation below
     compares cached callee-summary hashes against it, so a callee body
     edit that changes the callee's derived effects (with an unchanged
     declared signature) invalidates its cached callers *)
  let summaries =
    if t.flags.Flags.xproc then begin
      let tbl = Summary.of_program env in
      let hashes = Hashtbl.create (Hashtbl.length tbl * 2) in
      Hashtbl.iter
        (fun name sm -> Hashtbl.replace hashes name (Summary.hash sm))
        tbl;
      t.summary_hashes <- hashes;
      Some tbl
    end
    else begin
      if Hashtbl.length t.summary_hashes > 0 then
        t.summary_hashes <- Hashtbl.create 256;
      None
    end
  in
  let pairs = Sema.fundefs env in
  let hits = ref 0 and misses = ref 0 in
  let miss_list =
    List.filter_map
      (fun ((fs : Sema.funsig), fd) ->
        let id = fn_id fs in
        (* current-generation entries skip full validation, but never the
           summary comparison: a Patched-tier body edit leaves the
           generation alone yet can change a callee's derived effects,
           which must dirty its cached callers under [+xproc] (the list
           is empty otherwise, so the check is vacuous) *)
        let sums_current (e : fn_entry) =
          List.for_all
            (fun (c, h) -> String.equal h (callee_summary_hash t c))
            e.fn_callee_sums
        in
        match Hashtbl.find_opt t.fns id with
        | Some e when e.fn_gen = t.gen && sums_current e ->
            incr hits;
            None
        | Some e when entry_valid t e fs fd ->
            e.fn_gen <- t.gen;
            e.fn_fd <- fd;
            incr hits;
            None
        | _ ->
            incr misses;
            Some (id, fs, fd))
      pairs
  in
  (* a miss whose content key is in the persisted cache adopts the
     stored result — a restarted service warms up without re-checking *)
  let to_check =
    if Hashtbl.length t.persisted = 0 then miss_list
    else
      List.filter_map
        (fun ((id, fs, fd) as m) ->
          match Hashtbl.find_opt t.persisted (full_key t fs fd) with
          | Some (_, _, diags) ->
              Hashtbl.replace t.fns id (make_entry t fs fd diags);
              incr hits;
              decr misses;
              None
          | None -> Some m)
        miss_list
  in
  (* group by file, preserving definition order, like [Parcheck] *)
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (id, fs, fd) ->
      let file = fst id in
      match Hashtbl.find_opt tbl file with
      | Some cell -> cell := (id, fs, fd) :: !cell
      | None ->
          Hashtbl.add tbl file (ref [ (id, fs, fd) ]);
          order := file :: !order)
    to_check;
  let garr =
    Array.of_list
      (List.rev_map (fun file -> List.rev !(Hashtbl.find tbl file)) !order)
  in
  let results =
    Parcheck.map_tasks ~jobs (Array.length garr) (fun ~par:_ i ->
        (* always check against a copy: the persistent environment must
           stay pristine across requests (checking can register
           block-scope declarations), and per-task copies are exactly
           the cold driver's [-j] mode, which is byte-identical to
           in-place checking *)
        let local = Sema.copy_for_check env in
        List.map
          (fun (_, fs, fd) ->
            let coll = Diag.Collector.create () in
            Check.Checker.check_fundef ~diags:coll ?summaries local fs fd;
            Diag.Collector.all coll)
          garr.(i))
  in
  let rechecked = ref 0 in
  Array.iteri
    (fun i diag_lists ->
      List.iter2
        (fun (id, fs, fd) diags ->
          incr rechecked;
          Hashtbl.replace t.fns id (make_entry t fs fd diags))
        garr.(i) diag_lists)
    results;
  (!hits, !misses, !rechecked)

(* Assemble the request's diagnostics exactly like the cold CLI:
   frontend/sema messages, suppression-table errors, then the cached
   per-function results, sorted into canonical emission order and split
   by the suppression table. *)
let assemble t (env : Sema.program) =
  let frontend = Diag.Collector.all env.Sema.diags in
  let table, errs = Check.Suppress.of_pragmas env.Sema.p_pragmas in
  let checkd =
    List.concat_map
      (fun ((fs : Sema.funsig), _) ->
        match Hashtbl.find_opt t.fns (fn_id fs) with
        | Some e -> e.fn_diags
        | None -> [])
      (Sema.fundefs env)
  in
  let all = Diag.Collector.sort_emission (frontend @ errs @ checkd) in
  Check.Suppress.filter table all

(* ------------------------------------------------------------------ *)
(* The check request                                                   *)
(* ------------------------------------------------------------------ *)

let rebuild_pragmas t =
  t.base_pragmas
  @ List.concat_map
      (fun name ->
        match Hashtbl.find_opt t.files name with
        | Some fe -> fe.fe_ast.Ast.tu_pragmas
        | None -> [])
      t.doc_order

(* Decide how to bring the environment up to date with [docs]; returns
   the tier.  Raises [Diag.Fatal] before committing any state. *)
let update t ~flags ~canon docs =
  let structure_changed =
    t.env = None
    || (not (String.equal canon t.flags_canon))
    || List.map (fun d -> d.doc_name) docs <> t.doc_order
  in
  if structure_changed then begin
    let was_cold = t.env = None in
    let env, base_pragmas, new_files = build_env t ~flags docs in
    commit_env t ~flags ~canon env base_pragmas new_files docs;
    if was_cold then Cold else Rebuilt
  end
  else begin
    let changed =
      List.filter
        (fun d ->
          match Hashtbl.find_opt t.files d.doc_name with
          | Some fe -> not (String.equal fe.fe_text d.doc_text)
          | None -> true)
        docs
    in
    if changed = [] then Clean
    else begin
      (* parse every changed file under its recorded typedef scope and
         test for body-only change; any interface difference (or a
         brand-new file) forces a rebuild *)
      let parsed =
        List.map
          (fun d ->
            match Hashtbl.find_opt t.files d.doc_name with
            | None -> (d, None)
            | Some fe ->
                let tu =
                  Cfront.Parser.parse_string ~typedefs:fe.fe_typedefs
                    ~file:d.doc_name d.doc_text
                in
                (d, Some (fe, tu)))
          changed
      in
      let patchable =
        List.for_all
          (function
            | _, Some (fe, tu) -> body_only_change fe.fe_ast tu
            | _, None -> false)
          parsed
      in
      if not patchable then begin
        let env, base_pragmas, new_files = build_env t ~flags docs in
        commit_env t ~flags ~canon env base_pragmas new_files docs;
        Rebuilt
      end
      else begin
        let env = Option.get t.env in
        List.iter
          (fun (d, p) ->
            let fe, tu = Option.get p in
            List.iter2
              (fun od nd ->
                match (od, nd) with
                | Ast.Tfundef ofd, Ast.Tfundef nfd
                  when not (Ast.equal_fundef ofd nfd) ->
                    (* dirty body: swap the AST in place, drop the entry *)
                    ignore (Sema.patch_fundef env nfd);
                    let id = (d.doc_name, nfd.Ast.f_name) in
                    if Hashtbl.mem t.fns id then begin
                      Hashtbl.remove t.fns id;
                      t.n_invalidated <- t.n_invalidated + 1;
                      Telemetry.Counter.tick Telemetry.c_incr_invalidations
                    end
                | _ -> ())
              fe.fe_ast.Ast.tu_decls tu.Ast.tu_decls;
            Hashtbl.replace t.files d.doc_name
              {
                fe_text = d.doc_text;
                fe_digest = hex d.doc_text;
                fe_typedefs = fe.fe_typedefs;
                fe_ast = tu;
              })
          parsed;
        (* suppression comments live in the per-file pragma lists; a
           body edit may have changed them *)
        env.Sema.p_pragmas <- rebuild_pragmas t;
        Patched
      end
    end
  end

let check ?(jobs = 1) ?(flag_args = []) t docs =
  match Flags.apply_all t.base_flags flag_args with
  | Error (Flags.Unknown_flag name) ->
      Error
        (Diag.make
           ~loc:{ Loc.file = "<request>"; line = 1; col = 1 }
           ~code:"flag"
           (Printf.sprintf "unknown flag '%s'" name))
  | Ok flags -> (
      let canon = Flags.canonical flags in
      match update t ~flags ~canon docs with
      | exception Diag.Fatal d -> Error d
      | tier ->
          let env = Option.get t.env in
          let hits, misses, rechecked =
            match tier with
            | Clean ->
                (* nothing to validate: every entry is current *)
                (List.length (Sema.fundefs env), 0, 0)
            | _ -> revalidate_and_check t ~jobs env
          in
          t.n_hits <- t.n_hits + hits;
          t.n_misses <- t.n_misses + misses;
          t.n_rechecked <- t.n_rechecked + rechecked;
          Telemetry.Counter.add Telemetry.c_incr_hits hits;
          Telemetry.Counter.add Telemetry.c_incr_misses misses;
          Telemetry.Counter.add Telemetry.c_incr_rechecked rechecked;
          let kept, suppressed = assemble t env in
          Ok
            {
              oc_tier = tier;
              oc_kept = kept;
              oc_suppressed = suppressed;
              oc_functions = List.length (Sema.fundefs env);
              oc_hits = hits;
              oc_misses = misses;
              oc_rechecked = rechecked;
              oc_invalidated = t.n_invalidated;
            })

(* ------------------------------------------------------------------ *)
(* Invalidation                                                        *)
(* ------------------------------------------------------------------ *)

let invalidate t files =
  let dropped = ref 0 in
  (match files with
  | None ->
      dropped := Hashtbl.length t.fns;
      Hashtbl.reset t.fns;
      Hashtbl.reset t.files;
      Hashtbl.reset t.persisted;
      t.env <- None;
      t.doc_order <- []
  | Some names ->
      List.iter
        (fun name ->
          Hashtbl.remove t.files name;
          let victims =
            Hashtbl.fold
              (fun ((f, _) as id) _ acc ->
                if String.equal f name then id :: acc else acc)
              t.fns []
          in
          List.iter (Hashtbl.remove t.fns) victims;
          dropped := !dropped + List.length victims;
          let pvictims =
            Hashtbl.fold
              (fun key (f, _, _) acc ->
                if String.equal f name then key :: acc else acc)
              t.persisted []
          in
          List.iter (Hashtbl.remove t.persisted) pvictims)
        names);
  t.n_invalidated <- t.n_invalidated + !dropped;
  Telemetry.Counter.add Telemetry.c_incr_invalidations !dropped;
  !dropped

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)
(* ------------------------------------------------------------------ *)

let stats t =
  [
    ("entries", Hashtbl.length t.fns);
    ("files", Hashtbl.length t.files);
    ( "functions",
      match t.env with Some e -> List.length (Sema.fundefs e) | None -> 0 );
    ("generation", t.gen);
    ("incr_hits", t.n_hits);
    ("incr_invalidations", t.n_invalidated);
    ("incr_misses", t.n_misses);
    ("incr_rechecked", t.n_rechecked);
    ("persisted", Hashtbl.length t.persisted);
  ]

(* ------------------------------------------------------------------ *)
(* Persistence                                                         *)
(* ------------------------------------------------------------------ *)

let summaries_marker = "[summaries]"

let save t =
  let b = Buffer.create 65536 in
  Buffer.add_string b ("flags " ^ t.flags_canon ^ "\n");
  (match t.env with
  | Some env ->
      (* the interface section IS an interface library: the same
         stamped artifact [-dump-lib] writes, loadable with
         {!Check.Libspec.load} *)
      Buffer.add_string b (Check.Libspec.save env)
  | None -> ());
  Buffer.add_string b (summaries_marker ^ "\n");
  let record key file fn diags =
    Buffer.add_string b
      (J.to_string
         (J.Obj
            [
              ("key", J.String key);
              ("file", J.String file);
              ("fn", J.String fn);
              ("diags", J.List (List.map Diag.to_json diags));
            ]));
    Buffer.add_char b '\n'
  in
  (* live entries first (recomputing their content keys), then any
     still-unsuperseded adopted records: caches accumulate *)
  let written = Hashtbl.create 256 in
  (match t.env with
  | Some env ->
      List.iter
        (fun ((fs : Sema.funsig), fd) ->
          match Hashtbl.find_opt t.fns (fn_id fs) with
          | Some e when e.fn_gen = t.gen ->
              let key = full_key t fs fd in
              if not (Hashtbl.mem written key) then begin
                Hashtbl.add written key ();
                record key (fst (fn_id fs)) fs.Sema.fs_name e.fn_diags
              end
          | _ -> ())
        (Sema.fundefs env)
  | None -> ());
  Hashtbl.iter
    (fun key (file, fn, diags) ->
      if not (Hashtbl.mem written key) then begin
        Hashtbl.add written key ();
        record key file fn diags
      end)
    t.persisted;
  Check.Libspec.stamp ~kind:cache_kind ~version:cache_version
    (Buffer.contents b)

let load t text =
  match Check.Libspec.unstamp ~kind:cache_kind text with
  | Error _ as e -> e
  | Ok (v, _) when v <> cache_version ->
      Error
        (Printf.sprintf "summary cache has format version %d, this build reads %d"
           v cache_version)
  | Ok (_, payload) -> (
      (* summaries follow the [summaries] marker line *)
      let marker = "\n" ^ summaries_marker ^ "\n" in
      let rec find i =
        if i + String.length marker > String.length payload then None
        else if String.sub payload i (String.length marker) = marker then
          Some (i + String.length marker)
        else find (i + 1)
      in
      let start =
        if
          String.length payload >= String.length (summaries_marker ^ "\n")
          && String.sub payload 0 (String.length summaries_marker)
             = summaries_marker
        then Some (String.length summaries_marker + 1)
        else find 0
      in
      match start with
      | None -> Error "summary cache has no [summaries] section"
      | Some start ->
          let body =
            String.sub payload start (String.length payload - start)
          in
          let n = ref 0 in
          let err = ref None in
          List.iter
            (fun line ->
              if String.trim line <> "" && !err = None then
                match J.of_string line with
                | Error e -> err := Some e
                | Ok j -> (
                    let str k = Option.bind (J.member k j) J.to_string_opt in
                    match (str "key", str "file", str "fn", J.member "diags" j) with
                    | Some key, Some file, Some fn, Some (J.List ds) -> (
                        let diags =
                          List.fold_left
                            (fun acc d ->
                              match (acc, Diag.of_json d) with
                              | Ok acc, Ok d -> Ok (d :: acc)
                              | Ok _, (Error _ as e) -> e
                              | (Error _ as e), _ -> e)
                            (Ok []) ds
                        in
                        match diags with
                        | Ok ds ->
                            Hashtbl.replace t.persisted key
                              (file, fn, List.rev ds);
                            incr n
                        | Error e -> err := Some e)
                    | _ -> err := Some "malformed summary record"))
            (String.split_on_char '\n' body);
          (match !err with
          | Some e -> Error e
          | None -> Ok !n))
