(** The incremental checking daemon's wire protocol ([olclint -server]).

    Newline-delimited JSON over stdin/stdout: one request object per
    line in, one response object per line out, in order.  Requests:

    {v
    {"op":"check","files":["a.c", {"name":"b.c","text":"..."}],
     "flags":["+loopexec"],"jobs":4}
    {"op":"invalidate"}                  // drop everything
    {"op":"invalidate","files":["a.c"]}  // drop one file's summaries
    {"op":"stats"}
    {"op":"shutdown"}
    v}

    A [check] entry that is a plain string names a file read from disk;
    an object with [name]/[text] is an in-memory document (an editor
    buffer).  Responses always carry ["op"] and ["ok"]; see
    docs/incremental.md for the full schema.  Malformed input yields an
    [ok:false] response and the server keeps serving — only [shutdown]
    (or end of input) ends the loop. *)

val handle : Service.t -> Telemetry.Json.t -> Telemetry.Json.t * bool
(** Process one request against the service; returns the response and
    whether the server should keep running ([false] after [shutdown]).
    Exposed separately from the channel loop so tests can drive the
    protocol without a process. *)

val serve :
  ?cache:string -> Service.t -> in_channel -> out_channel -> unit
(** The daemon loop: read NDJSON requests until [shutdown] or EOF.
    With [cache], load a persisted summary cache from that path at
    startup (ignored with a warning on stderr if invalid) and write the
    cache back on shutdown/EOF. *)
