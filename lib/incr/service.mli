(** The incremental checking service: a content-hashed summary cache
    over the whole pipeline, so an edit re-checks only what the edit can
    affect (ROADMAP: "incremental checking service").

    The service owns a persistent program environment (standard library,
    interface libraries, LCL specs, the analysed sources) plus two cache
    layers:

    - {b per-file parse/sema artifacts} keyed by source content: a file
      whose text is unchanged is never re-lexed or re-parsed, and when
      every interface in a changed file is structurally identical the
      new bodies are patched into the environment ({!Sema.patch_fundef})
      without re-running sema at all;
    - {b per-function check results} keyed by the function's body
      identity, its own funsig hash, the funsig hashes of its direct
      callees, the type-environment hash and the canonicalized flag set
      ({!Annot.Flags.canonical}) — so a body edit re-checks one
      function, and a funsig change re-checks the function plus its
      annotation-dependent callers, and nothing else.

    Checking runs on the {!Parcheck.map_tasks} domain pool (misses are
    grouped by file, each group checks against its own
    {!Sema.copy_for_check}), so re-check diagnostics are byte-identical
    for every [jobs] value — and, by construction of the cache, to a
    cold run.

    Persistence: {!save}/{!load} write and read the summary cache as a
    versioned, hash-stamped artifact (the {!Check.Libspec} framing); a
    restarted service adopts persisted results by content key instead of
    re-checking.

    Limits: the service does not run annotation inference
    ([+inferconstraints]) incrementally — inference reads every body, so
    under that flag every request is a full rebuild (correct, just not
    incremental). *)

type doc = { doc_name : string; doc_text : string }
(** One source document: a file name (diagnostic locations use it) and
    its full text. *)

val doc_of_file : string -> doc
(** Read a document from disk ([Sys_error] on failure). *)

type t
(** A service instance.  Not thread-safe: one request at a time
    (parallelism happens inside a request, on the checking pool). *)

val create :
  ?flags:Annot.Flags.t ->
  ?no_stdlib:bool ->
  ?load_libs:(string * string) list ->
  ?lcl_specs:(string * string) list ->
  unit ->
  t
(** A fresh service.  [load_libs]/[lcl_specs] are (name, text) pairs of
    interface libraries and LCL specifications loaded into every
    environment the service builds.  [flags] is the base flag set;
    per-request flag strings layer on top of it. *)

(** How a [check] request was satisfied. *)
type tier =
  | Cold  (** no environment yet: full parse + sema + check *)
  | Clean  (** nothing changed: answered from cache alone *)
  | Patched
      (** only function bodies changed: new bodies patched into the
          persistent environment, no re-parse of unchanged files, no
          re-sema; only the dirty functions re-checked *)
  | Rebuilt
      (** an interface, the file set or the flag set changed: sema re-run
          (unchanged files reuse their cached ASTs), then a key-driven
          re-check of exactly the invalidated functions *)

val tier_name : tier -> string

type outcome = {
  oc_tier : tier;
  oc_kept : Cfront.Diag.t list;  (** emission-sorted, suppression applied *)
  oc_suppressed : Cfront.Diag.t list;
  oc_functions : int;  (** functions defined in the checked documents *)
  oc_hits : int;
      (** results reused: validated in place or adopted from a persisted
          cache by content key *)
  oc_misses : int;  (** results that could not be validated in place *)
  oc_rechecked : int;
      (** misses actually re-checked (a persisted-key adoption turns a
          miss back into a hit) *)
  oc_invalidated : int;  (** cache entries dropped by this request *)
}

val check :
  ?jobs:int -> ?flag_args:string list -> t -> doc list ->
  (outcome, Cfront.Diag.t) result
(** Check the document set, reusing every cached result the edit since
    the previous request provably cannot affect.  [flag_args] are
    LCLint-style flag strings applied over the service's base flags; a
    change of effective flag set invalidates everything (the flag set is
    part of every cache key).  [Error d] reports a fatal frontend error
    (parse/lex); the service keeps its previous state and the next
    request proceeds normally. *)

val invalidate : t -> string list option -> int
(** Drop cached state: [None] everything (including persisted-key
    adoptions), [Some files] the named files' parse artifacts and
    function summaries.  Returns the number of function entries
    dropped. *)

val stats : t -> (string * int) list
(** Cumulative service statistics, sorted by name: [incr_hits],
    [incr_misses], [incr_invalidations], [incr_rechecked] (mirroring the
    telemetry counters, but maintained even when telemetry is off) plus
    gauges ([files], [functions], [entries], [persisted],
    [generation]). *)

(** {1 Persistence} *)

val cache_kind : string
val cache_version : int

val save : t -> string
(** The summary cache as a versioned, hash-stamped artifact: the
    environment's interface library (a {!Check.Libspec} section) plus
    one NDJSON record per cached function result, keyed by content, so a
    later service — possibly in a fresh process — can adopt results
    without re-checking. *)

val load : t -> string -> (int, string) result
(** Load a persisted cache produced by {!save}; [Ok n] is the number of
    persisted summaries now available for key adoption.  A kind, version
    or stamp mismatch returns [Error] and changes nothing. *)
