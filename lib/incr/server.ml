(** NDJSON protocol for the incremental checking daemon (see
    server.mli).  The protocol layer is deliberately thin: decode the
    request, call {!Service}, encode the result.  Diagnostics are emitted
    as the same records [olclint -json] writes ({!Cfront.Diag.to_json}),
    so existing consumers parse server output unchanged. *)

module Diag = Cfront.Diag
module J = Telemetry.Json

let error_response op msg =
  J.Obj [ ("op", J.String op); ("ok", J.Bool false); ("error", J.String msg) ]

let strings_of = function
  | Some (J.List items) ->
      Some
        (List.filter_map (function J.String s -> Some s | _ -> None) items)
  | _ -> None

(* A [files] entry: "path" (read from disk) or {"name":..,"text":..}
   (in-memory document). *)
let doc_of_entry = function
  | J.String path -> Ok (Service.doc_of_file path)
  | J.Obj _ as o -> (
      match
        ( Option.bind (J.member "name" o) J.to_string_opt,
          Option.bind (J.member "text" o) J.to_string_opt )
      with
      | Some name, Some text ->
          Ok { Service.doc_name = name; doc_text = text }
      | _ -> Error "file entry object needs \"name\" and \"text\"")
  | _ -> Error "file entry must be a path string or a {name,text} object"

let check_response (oc : Service.outcome) =
  let diag_records =
    List.map (fun d -> Diag.to_json ~suppressed:false d) oc.Service.oc_kept
    @ List.map (fun d -> Diag.to_json ~suppressed:true d) oc.Service.oc_suppressed
  in
  J.Obj
    [
      ("op", J.String "check");
      ("ok", J.Bool true);
      ("tier", J.String (Service.tier_name oc.Service.oc_tier));
      ("warnings", J.Int (List.length oc.Service.oc_kept));
      ("suppressed", J.Int (List.length oc.Service.oc_suppressed));
      ("functions", J.Int oc.Service.oc_functions);
      ("hits", J.Int oc.Service.oc_hits);
      ("misses", J.Int oc.Service.oc_misses);
      ("rechecked", J.Int oc.Service.oc_rechecked);
      ("diagnostics", J.List diag_records);
    ]

let handle t request =
  let op =
    match Option.bind (J.member "op" request) J.to_string_opt with
    | Some op -> op
    | None -> "?"
  in
  match op with
  | "check" -> (
      let entries =
        match J.member "files" request with
        | Some (J.List items) -> Ok items
        | _ -> Error "check request needs a \"files\" array"
      in
      let docs =
        Result.bind entries (fun items ->
            List.fold_left
              (fun acc e ->
                Result.bind acc (fun acc ->
                    match doc_of_entry e with
                    | Ok d -> Ok (d :: acc)
                    | Error _ as err -> err))
              (Ok []) items
            |> Result.map List.rev)
      in
      match docs with
      | Error msg -> (error_response "check" msg, true)
      | Ok docs -> (
          let flag_args =
            Option.value ~default:[] (strings_of (J.member "flags" request))
          in
          let jobs =
            match Option.bind (J.member "jobs" request) J.to_int_opt with
            | Some n when n > 0 -> n
            | Some 0 -> Parcheck.default_jobs ()
            | _ -> 1
          in
          match
            try Service.check ~jobs ~flag_args t docs
            with Sys_error msg ->
              Error
                (Diag.make
                   ~loc:{ Cfront.Loc.file = "<request>"; line = 1; col = 1 }
                   ~code:"io" msg)
          with
          | Ok oc -> (check_response oc, true)
          | Error d -> (error_response "check" (Diag.to_string d), true)))
  | "invalidate" ->
      let files = strings_of (J.member "files" request) in
      let dropped = Service.invalidate t files in
      ( J.Obj
          [
            ("op", J.String "invalidate");
            ("ok", J.Bool true);
            ("dropped", J.Int dropped);
          ],
        true )
  | "stats" ->
      ( J.Obj
          ([ ("op", J.String "stats"); ("ok", J.Bool true) ]
          @ List.map (fun (k, v) -> (k, J.Int v)) (Service.stats t)),
        true )
  | "shutdown" ->
      (J.Obj [ ("op", J.String "shutdown"); ("ok", J.Bool true) ], false)
  | op -> (error_response op (Printf.sprintf "unknown op %S" op), true)

let serve ?cache t ic oc =
  (match cache with
  | Some path when Sys.file_exists path -> (
      let text =
        let c = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr c)
          (fun () -> really_input_string c (in_channel_length c))
      in
      match Service.load t text with
      | Ok _ -> ()
      | Error msg ->
          Printf.eprintf "olclint: ignoring cache %s: %s\n%!" path msg)
  | _ -> ());
  let continue = ref true in
  while !continue do
    match input_line ic with
    | exception End_of_file -> continue := false
    | line when String.trim line = "" -> ()
    | line ->
        let response, keep =
          match J.of_string line with
          | Error msg -> (error_response "?" ("bad request: " ^ msg), true)
          | Ok request -> handle t request
        in
        output_string oc (J.to_string response);
        output_char oc '\n';
        flush oc;
        continue := keep
  done;
  match cache with
  | Some path ->
      let c = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr c)
        (fun () -> output_string c (Service.save t))
  | None -> ()
